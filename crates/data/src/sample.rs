//! Core data containers for domain-incremental datasets.

use serde::{Deserialize, Serialize};

/// One labelled example: a dense feature vector plus its class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Input features.
    pub features: Vec<f32>,
    /// Class label in `0..classes`.
    pub label: usize,
}

/// All data belonging to one domain of a dataset, split into train and test.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainData {
    /// Human-readable domain name (e.g. `"MNIST"`, `"Sketch"`).
    pub name: String,
    /// Training split.
    pub train: Vec<Sample>,
    /// Held-out evaluation split.
    pub test: Vec<Sample>,
}

impl DomainData {
    /// Total number of samples across both splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// Whether the domain holds no samples.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.test.is_empty()
    }
}

/// A full domain-incremental dataset: a shared label space observed under
/// several input domains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FdilDataset {
    /// Dataset name (e.g. `"Digits-Five"`).
    pub name: String,
    /// Number of classes shared by every domain.
    pub classes: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Per-domain data, in the dataset's canonical task order.
    pub domains: Vec<DomainData>,
}

impl FdilDataset {
    /// Number of domains (= incremental tasks).
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// Index of the domain named `name`, if present.
    pub fn domain_index(&self, name: &str) -> Option<usize> {
        self.domains.iter().position(|d| d.name == name)
    }

    /// Returns a copy with the domains reordered by `order` (indices into the
    /// current domain list). Used for the paper's "new domain order" runs
    /// (Tables 2 and 4).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..num_domains()`.
    pub fn reordered(&self, order: &[usize]) -> Self {
        assert_eq!(order.len(), self.domains.len(), "order length mismatch");
        let mut seen = vec![false; order.len()];
        for &i in order {
            assert!(
                i < order.len() && !seen[i],
                "order must be a permutation, got {order:?}"
            );
            seen[i] = true;
        }
        Self {
            name: self.name.clone(),
            classes: self.classes,
            feature_dim: self.feature_dim,
            domains: order.iter().map(|&i| self.domains[i].clone()).collect(),
        }
    }

    /// Total sample count across domains and splits.
    pub fn total_samples(&self) -> usize {
        self.domains.iter().map(DomainData::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FdilDataset {
        FdilDataset {
            name: "t".into(),
            classes: 2,
            feature_dim: 1,
            domains: vec![
                DomainData {
                    name: "a".into(),
                    train: vec![],
                    test: vec![],
                },
                DomainData {
                    name: "b".into(),
                    train: vec![],
                    test: vec![],
                },
                DomainData {
                    name: "c".into(),
                    train: vec![],
                    test: vec![],
                },
            ],
        }
    }

    #[test]
    fn reorder_permutes_domains() {
        let d = tiny().reordered(&[2, 0, 1]);
        let names: Vec<&str> = d.domains.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn reorder_rejects_duplicates() {
        tiny().reordered(&[0, 0, 1]);
    }

    #[test]
    fn domain_index_lookup() {
        let d = tiny();
        assert_eq!(d.domain_index("b"), Some(1));
        assert_eq!(d.domain_index("zzz"), None);
    }
}
