//! Non-iid client partitioning with quantity shift.
//!
//! The paper's Appendix A: "These local datasets are not independent and
//! identically distributed (non-iid), showcasing a type of *quantity shift*
//! in our setting." Clients share the label distribution but hold very
//! different data volumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use refil_nn::gaussian;

use crate::sample::Sample;
use crate::synth::shuffle;

/// How client data volumes are skewed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantityShift {
    /// Equal share per client (iid volume).
    Uniform,
    /// Log-normal client weights with the given sigma; larger sigma = more
    /// skew between resource-rich and resource-poor participants.
    Lognormal(f32),
}

/// Splits `samples` across `n_clients` with the requested quantity shift,
/// returning per-client sample vectors.
///
/// Every client receives at least one sample when `samples.len() >= n_clients`.
///
/// # Panics
///
/// Panics if `n_clients == 0`.
pub fn partition_quantity_shift(
    mut samples: Vec<Sample>,
    n_clients: usize,
    shift: QuantityShift,
    seed: u64,
) -> Vec<Vec<Sample>> {
    assert!(n_clients > 0, "need at least one client");
    let mut rng = StdRng::seed_from_u64(seed);
    shuffle(&mut samples, &mut rng);

    let weights: Vec<f32> = match shift {
        QuantityShift::Uniform => vec![1.0; n_clients],
        QuantityShift::Lognormal(sigma) => (0..n_clients)
            .map(|_| (gaussian(&mut rng) * sigma).exp())
            .collect(),
    };
    let wsum: f32 = weights.iter().sum();
    let total = samples.len();

    // Integer allotments with guaranteed minimum of 1 (when possible).
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * total as f32).floor() as usize)
        .collect();
    if total >= n_clients {
        for c in counts.iter_mut() {
            if *c == 0 {
                *c = 1;
            }
        }
    }
    // Fix the sum: trim from the largest or pad the smallest.
    loop {
        let s: usize = counts.iter().sum();
        if s == total {
            break;
        }
        if s > total {
            let i = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .expect("non-empty counts");
            counts[i] -= 1;
        } else {
            let i = rng.gen_range(0..n_clients);
            counts[i] += 1;
        }
    }

    let mut out = Vec::with_capacity(n_clients);
    let mut iter = samples.into_iter();
    for &c in &counts {
        out.push(iter.by_ref().take(c).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                features: vec![i as f32],
                label: i % 3,
            })
            .collect()
    }

    #[test]
    fn partition_conserves_samples() {
        let parts = partition_quantity_shift(mk_samples(100), 7, QuantityShift::Lognormal(0.8), 1);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
    }

    #[test]
    fn uniform_is_roughly_even() {
        let parts = partition_quantity_shift(mk_samples(100), 4, QuantityShift::Uniform, 2);
        for p in &parts {
            assert!(
                (20..=30).contains(&p.len()),
                "uniform split uneven: {}",
                p.len()
            );
        }
    }

    #[test]
    fn lognormal_is_skewed() {
        let parts =
            partition_quantity_shift(mk_samples(1000), 10, QuantityShift::Lognormal(1.0), 3);
        let max = parts.iter().map(Vec::len).max().unwrap();
        let min = parts.iter().map(Vec::len).min().unwrap();
        assert!(
            max as f32 / min.max(1) as f32 > 2.0,
            "no skew: max {max} min {min}"
        );
    }

    #[test]
    fn every_client_gets_data_when_possible() {
        let parts = partition_quantity_shift(mk_samples(50), 10, QuantityShift::Lognormal(2.0), 4);
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = partition_quantity_shift(mk_samples(60), 5, QuantityShift::Lognormal(0.5), 9);
        let b = partition_quantity_shift(mk_samples(60), 5, QuantityShift::Lognormal(0.5), 9);
        assert_eq!(a, b);
    }
}
