//! Minibatch construction.

use rand::Rng;

use refil_nn::Tensor;

use crate::sample::Sample;
use crate::synth::shuffle;

/// A minibatch ready for the model: features `[batch, dim]` plus labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input features, `[batch, feature_dim]`.
    pub features: Tensor,
    /// Integer labels, one per row.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Packs samples into a single [`Batch`] (used for evaluation).
///
/// # Panics
///
/// Panics if `samples` is empty or feature widths differ.
pub fn collate(samples: &[&Sample]) -> Batch {
    assert!(!samples.is_empty(), "cannot collate an empty batch");
    let dim = samples[0].features.len();
    let mut data = Vec::with_capacity(samples.len() * dim);
    let mut labels = Vec::with_capacity(samples.len());
    for s in samples {
        assert_eq!(s.features.len(), dim, "inconsistent feature widths");
        data.extend_from_slice(&s.features);
        labels.push(s.label);
    }
    Batch {
        features: Tensor::from_vec(data, &[samples.len(), dim]),
        labels,
    }
}

/// Yields shuffled minibatches over `samples`.
///
/// The final partial batch is included. Returns an empty vector for empty
/// input.
pub fn minibatches<R: Rng>(samples: &[Sample], batch_size: usize, rng: &mut R) -> Vec<Batch> {
    assert!(batch_size > 0, "batch size must be positive");
    if samples.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..samples.len()).collect();
    shuffle(&mut order, rng);
    order
        .chunks(batch_size)
        .map(|chunk| {
            let refs: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
            collate(&refs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                features: vec![i as f32, 0.0],
                label: i % 2,
            })
            .collect()
    }

    #[test]
    fn collate_layout() {
        let s = mk(3);
        let refs: Vec<&Sample> = s.iter().collect();
        let b = collate(&refs);
        assert_eq!(b.features.shape(), &[3, 2]);
        assert_eq!(b.labels, vec![0, 1, 0]);
    }

    #[test]
    fn minibatches_cover_everything_once() {
        let s = mk(10);
        let mut rng = StdRng::seed_from_u64(0);
        let batches = minibatches(&s, 3, &mut rng);
        assert_eq!(batches.len(), 4); // 3+3+3+1
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 10);
        let mut firsts: Vec<f32> = batches
            .iter()
            .flat_map(|b| {
                b.features
                    .data()
                    .chunks(2)
                    .map(|r| r[0])
                    .collect::<Vec<_>>()
            })
            .collect();
        firsts.sort_by(f32::total_cmp);
        assert_eq!(firsts, (0..10).map(|x| x as f32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_no_batches() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(minibatches(&[], 4, &mut rng).is_empty());
    }
}
