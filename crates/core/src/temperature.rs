//! Contrastive temperature decay (paper Eq. 7).
//!
//! `tau' = max(tau_min, tau * (1 - (gamma + (t - 1) * beta)))`
//!
//! Early tasks use a soft temperature (flexible positive/negative
//! separation); as learning progresses and global domain diversity grows,
//! the temperature shrinks, making the DPCL loss increasingly stringent.

use serde::{Deserialize, Serialize};

/// Parameters of the temperature-decay schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperatureSchedule {
    /// Base temperature `tau` (paper: 0.9).
    pub tau: f32,
    /// Floor `tau_min` (paper: 0.3).
    pub tau_min: f32,
    /// Base decay rate `gamma` in `[0, 1]` (paper: 0.1).
    pub gamma: f32,
    /// Per-task increment `beta` in `[0, 1]` (paper: 0.05).
    pub beta: f32,
}

impl Default for TemperatureSchedule {
    /// The paper's hyperparameters (§4.1).
    fn default() -> Self {
        Self {
            tau: 0.9,
            tau_min: 0.3,
            gamma: 0.1,
            beta: 0.05,
        }
    }
}

impl TemperatureSchedule {
    /// The decayed temperature `tau'` at 1-based task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` or `beta` leave `[0, 1]`, or `t == 0` (tasks are
    /// 1-based in Eq. 7).
    pub fn at_task(&self, t: usize) -> f32 {
        assert!((0.0..=1.0).contains(&self.gamma), "gamma must be in [0,1]");
        assert!((0.0..=1.0).contains(&self.beta), "beta must be in [0,1]");
        assert!(t >= 1, "tasks are 1-based in Eq. 7");
        let decay = self.gamma + (t as f32 - 1.0) * self.beta;
        (self.tau * (1.0 - decay)).max(self.tau_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_at_each_task() {
        let s = TemperatureSchedule::default();
        // t=1: 0.9 * (1 - 0.1) = 0.81
        assert!((s.at_task(1) - 0.81).abs() < 1e-6);
        // t=2: 0.9 * (1 - 0.15) = 0.765
        assert!((s.at_task(2) - 0.765).abs() < 1e-6);
        // t=5: 0.9 * (1 - 0.3) = 0.63
        assert!((s.at_task(5) - 0.63).abs() < 1e-6);
    }

    #[test]
    fn floor_is_respected() {
        let s = TemperatureSchedule {
            tau: 0.9,
            tau_min: 0.3,
            gamma: 0.5,
            beta: 0.3,
        };
        // t=3: 0.9 * (1 - 1.1) < 0 -> clamped to 0.3.
        assert_eq!(s.at_task(3), 0.3);
    }

    #[test]
    fn monotonically_nonincreasing() {
        let s = TemperatureSchedule::default();
        let mut prev = f32::INFINITY;
        for t in 1..=20 {
            let cur = s.at_task(t);
            assert!(cur <= prev);
            assert!(cur >= s.tau_min);
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn task_zero_rejected() {
        TemperatureSchedule::default().at_task(0);
    }
}
