//! Domain-specific Prompt Contrastive Learning loss (paper Eq. 6).
//!
//! For each generated prompt `u_i` (label `k`), the positives are the
//! closest global prompts of class `k` — one for single-domain clients
//! (`U_o`, `U_n`), two for in-between clients (`U_b`) — and every other
//! global prompt is a negative. The InfoNCE objective with the decayed
//! temperature `tau'` (Eq. 7) pushes locally generated prompts toward their
//! class/domain neighbourhood while keeping distinct domain boundaries.

use refil_clustering::cosine_similarity;
use refil_nn::{Graph, Tensor, Var};

/// Builds the DPCL loss for a batch.
///
/// * `u` — generated prompts, `[b, p*d]` (gradients flow through it);
/// * `candidates` — global prompt representatives (constants);
/// * `cand_classes` — class of each candidate;
/// * `labels` — batch labels;
/// * `n_pos` — positives per sample (1 for `U_o`/`U_n`, 2 for `U_b`);
/// * `tau` — decayed temperature `tau'`.
///
/// Rows whose class has no candidate contribute zero loss (all candidates
/// are treated as positives for them, making the log-ratio exactly 0).
/// Returns `None` when there are no candidates at all.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn dpcl_loss(
    g: &Graph,
    u: Var,
    candidates: &[Vec<f32>],
    cand_classes: &[usize],
    labels: &[usize],
    n_pos: usize,
    tau: f32,
) -> Option<Var> {
    if candidates.is_empty() {
        return None;
    }
    assert_eq!(
        candidates.len(),
        cand_classes.len(),
        "candidate class list mismatch"
    );
    let ushape = g.shape(u);
    assert_eq!(ushape.len(), 2, "u must be [b, p*d]");
    let (b, d) = (ushape[0], ushape[1]);
    assert_eq!(labels.len(), b, "labels length mismatch");
    let m = candidates.len();

    // Row-normalized constant candidate matrix.
    let mut cdata = Vec::with_capacity(m * d);
    for c in candidates {
        assert_eq!(c.len(), d, "candidate dim mismatch");
        let norm = c.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-8);
        cdata.extend(c.iter().map(|x| x / norm));
    }
    let cand = g.constant(Tensor::from_vec(cdata, &[m, d]));

    // Similarity logits: normalize(u) @ normalize(C)^T / tau; matmul_nt reads
    // the candidate rows transposed in place, no [d, m] copy.
    let un = g.row_l2_normalize(u);
    let sims = g.matmul_nt(un, cand);
    let logits = g.scale(sims, 1.0 / tau.max(1e-4));

    // Positive sets from *detached* prompt values (selection is not part of
    // the gradient, matching the paper's sampling strategy).
    let uvals = g.value(un);
    let positives: Vec<Vec<usize>> = labels
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let urow = &uvals.data()[i * d..(i + 1) * d];
            let mut same: Vec<(usize, f32)> = cand_classes
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == k)
                .map(|(j, _)| (j, cosine_similarity(urow, &candidates[j])))
                .collect();
            if same.is_empty() {
                // No candidate of this class yet: neutral row (zero loss).
                return (0..m).collect();
            }
            same.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            same.truncate(n_pos.max(1));
            same.into_iter().map(|(j, _)| j).collect()
        })
        .collect();

    Some(g.multi_positive_nce(logits, &positives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use refil_nn::{Params, Sgd};

    fn candidates() -> (Vec<Vec<f32>>, Vec<usize>) {
        (
            vec![
                vec![1.0, 0.0, 0.0, 0.0], // class 0, domain A
                vec![0.0, 1.0, 0.0, 0.0], // class 0, domain B
                vec![0.0, 0.0, 1.0, 0.0], // class 1
            ],
            vec![0, 0, 1],
        )
    }

    #[test]
    fn no_candidates_gives_none() {
        let g = Graph::new();
        let u = g.constant(Tensor::zeros(&[1, 4]));
        assert!(dpcl_loss(&g, u, &[], &[], &[0], 1, 0.9).is_none());
    }

    #[test]
    fn aligned_prompt_has_lower_loss_than_misaligned() {
        let (cands, classes) = candidates();
        let g = Graph::new();
        let aligned = g.constant(Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[1, 4]));
        let misaligned = g.constant(Tensor::from_vec(vec![0.0, 0.0, 1.0, 0.0], &[1, 4]));
        let la = g.value(dpcl_loss(&g, aligned, &cands, &classes, &[0], 1, 0.5).unwrap());
        let lm = g.value(dpcl_loss(&g, misaligned, &cands, &classes, &[0], 1, 0.5).unwrap());
        assert!(
            la.data()[0] < lm.data()[0],
            "{} !< {}",
            la.data()[0],
            lm.data()[0]
        );
    }

    #[test]
    fn missing_class_rows_are_neutral() {
        let (cands, classes) = candidates();
        let g = Graph::new();
        // Label 7 has no candidates: loss must be exactly zero.
        let u = g.constant(Tensor::from_vec(vec![0.5, 0.5, 0.0, 0.0], &[1, 4]));
        let l = g.value(dpcl_loss(&g, u, &cands, &classes, &[7], 1, 0.5).unwrap());
        assert!(
            l.data()[0].abs() < 1e-6,
            "neutral row not zero: {}",
            l.data()[0]
        );
    }

    #[test]
    fn two_positives_for_between_clients() {
        let (cands, classes) = candidates();
        let g = Graph::new();
        // With n_pos = 2 both class-0 candidates are positives, so only the
        // class-1 candidate is a negative — the loss must be smaller than the
        // 1-positive case for a prompt equally near both class-0 candidates.
        let u = Tensor::from_vec(vec![0.7, 0.7, 0.0, 0.0], &[1, 4]);
        let l1 =
            g.value(dpcl_loss(&g, g.constant(u.clone()), &cands, &classes, &[0], 1, 0.5).unwrap());
        let l2 = g.value(dpcl_loss(&g, g.constant(u), &cands, &classes, &[0], 2, 0.5).unwrap());
        assert!(l2.data()[0] < l1.data()[0]);
    }

    #[test]
    fn gradient_pulls_prompt_toward_positive() {
        let (cands, classes) = candidates();
        let mut params = Params::new();
        let u0 = Tensor::from_vec(vec![0.4, 0.1, 0.6, 0.0], &[1, 4]);
        let uid = params.insert("u", u0, true);
        let mut opt = Sgd::new(0.5);
        for _ in 0..60 {
            params.zero_grad();
            let g = Graph::new();
            let u = g.param(&params, uid);
            let loss = dpcl_loss(&g, u, &cands, &classes, &[0], 1, 0.5).unwrap();
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        let u = params.value(uid);
        let sim_pos = cosine_similarity(u.data(), &cands[0]);
        let sim_neg = cosine_similarity(u.data(), &cands[2]);
        assert!(
            sim_pos > sim_neg + 0.3,
            "DPCL failed to separate: pos {sim_pos}, neg {sim_neg}"
        );
    }

    #[test]
    fn lower_temperature_sharpens_loss_spread() {
        let (cands, classes) = candidates();
        let g = Graph::new();
        let u = Tensor::from_vec(vec![0.9, 0.1, 0.3, 0.0], &[1, 4]);
        let hot =
            g.value(dpcl_loss(&g, g.constant(u.clone()), &cands, &classes, &[0], 1, 0.9).unwrap());
        let cold = g.value(dpcl_loss(&g, g.constant(u), &cands, &classes, &[0], 1, 0.3).unwrap());
        // Sharper temperature should reduce the loss for a well-aligned
        // prompt (the positive dominates the partition function more).
        assert!(cold.data()[0] < hot.data()[0]);
    }
}
