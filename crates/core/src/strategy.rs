//! The RefFiL strategy: Algorithm 1 end to end.
//!
//! Client side (lines 14–29): tokenize, generate instance-level prompts with
//! the CDAP generator, compute `L_CE` (local prompts), `L_GPL` (generalized
//! global prompt), and `L_DPCL` (contrastive, temperature-decayed), train
//! with SGD, then upload the class-wise Local Prompt Groups together with the
//! updated model. Server side (lines 1–13): FedAvg the models, cluster the
//! uploaded prompts domain-wise with FINCH, and broadcast the clustered
//! global prompts for the next round.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use refil_continual::{MethodConfig, ModelCore};
use refil_fed::{
    ClientGroup, ClientUpdate, DomainEvaluator, EvalContext, FdilStrategy, GlobalPromptBroadcast,
    PromptUpload, RoundContext, SessionOutput, Telemetry, TrainSetting, WireMessage,
};
use refil_nn::models::PromptedBackbone;
use refil_nn::{init, Graph, InferenceSession, ParamId, Params, Tensor, Var};

use crate::cdap::{CdapConfig, CdapGenerator};
use crate::dpcl::dpcl_loss;
use crate::prompts::{ClusterMode, GlobalPromptStore, LocalPromptGroup};
use crate::temperature::TemperatureSchedule;

/// Component toggles for the Table 5 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefFiLFlags {
    /// Use the CDAP generator (otherwise a single learnable prompt).
    pub use_cdap: bool,
    /// Use the Global Prompt Learning loss (Eq. 9).
    pub use_gpl: bool,
    /// Use the Domain-specific Prompt Contrastive loss (Eq. 6).
    pub use_dpcl: bool,
}

impl Default for RefFiLFlags {
    /// The full method: all three components on.
    fn default() -> Self {
        Self {
            use_cdap: true,
            use_gpl: true,
            use_dpcl: true,
        }
    }
}

impl RefFiLFlags {
    /// Whether the global prompt store is needed at all.
    pub fn needs_store(&self) -> bool {
        self.use_gpl || self.use_dpcl
    }
}

/// RefFiL hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RefFiLConfig {
    /// The shared method configuration (backbone, lr, prompt length, ...).
    pub method: MethodConfig,
    /// DPCL temperature decay (Eq. 7; paper defaults).
    pub temperature: TemperatureSchedule,
    /// Component toggles (all on for the full method).
    pub flags: RefFiLFlags,
    /// Hidden width of the CDAP token-axis MLP.
    pub cdap_hidden: usize,
    /// Width of the CDAP task key embedding.
    pub key_dim: usize,
    /// Per-class cap on server-side prompt representatives.
    pub store_cap: usize,
    /// Max samples per class used when computing the uploaded LPG.
    pub lpg_max_samples: usize,
    /// Server-side prompt condensation algorithm (FINCH in the paper;
    /// k-means / plain averaging for the `ablation_clustering` bench).
    pub cluster_mode: ClusterMode,
    /// When set, clients upload their LPG once per ~50 local samples instead
    /// of exactly once — the data-size-weighted sharing the paper's balanced
    /// averaging (Eq. 2) deliberately avoids (`ablation_prompt_weighting`).
    pub weighted_prompt_sharing: bool,
    /// When set, evaluation ignores the task-ID hint and infers the task per
    /// sample by maximum prediction confidence across all task keys —
    /// removing the task-ID dependence the paper's Limitations section
    /// acknowledges (at `max_tasks`-times inference cost).
    pub task_free_inference: bool,
    /// When set, clients exchange only the prompt machinery (the CDAP
    /// generator / fixed prompt, the task keys, and the tokenizer) in their
    /// round updates once the task-0 warm-up has trained the shared
    /// backbone; from task 1 on the extractor, attention blocks, and
    /// classifier are FLEX-style frozen at the last globally aggregated
    /// weights, locally and over the wire. This is the communication-light
    /// deployment the paper motivates: prompts are the learned state that
    /// travels, and the steady-state uplink shrinks to the prompt
    /// machinery's footprint. At bench scale it trades accuracy for bytes —
    /// the from-scratch backbone here keeps benefiting from aggregation,
    /// unlike the paper's pretrained frozen ViT (see `BENCH_wire.json`).
    #[serde(default)]
    pub prompt_only: bool,
}

impl RefFiLConfig {
    /// Full RefFiL with the paper's hyperparameters on top of `method`.
    pub fn new(method: MethodConfig) -> Self {
        Self {
            method,
            temperature: TemperatureSchedule::default(),
            flags: RefFiLFlags::default(),
            cdap_hidden: 16,
            key_dim: 8,
            store_cap: 16,
            lpg_max_samples: 32,
            cluster_mode: ClusterMode::Finch,
            weighted_prompt_sharing: false,
            task_free_inference: false,
            prompt_only: false,
        }
    }

    /// Overrides the ablation flags.
    pub fn with_flags(mut self, flags: RefFiLFlags) -> Self {
        self.flags = flags;
        self
    }

    /// Overrides the server-side clustering algorithm.
    pub fn with_cluster_mode(mut self, mode: ClusterMode) -> Self {
        self.cluster_mode = mode;
        self
    }

    /// Switches to data-size-weighted prompt sharing (ablation).
    pub fn with_weighted_prompt_sharing(mut self, on: bool) -> Self {
        self.weighted_prompt_sharing = on;
        self
    }

    /// Switches evaluation to confidence-based task inference.
    pub fn with_task_free_inference(mut self, on: bool) -> Self {
        self.task_free_inference = on;
        self
    }

    /// Switches to prompt-only parameter exchange after the task-0 warm-up
    /// (the shared backbone freezes at the last aggregated weights; only
    /// the prompt machinery travels uplink).
    pub fn with_prompt_only(mut self, on: bool) -> Self {
        self.prompt_only = on;
        self
    }
}

/// The RefFiL federated domain-incremental learning strategy.
#[derive(Debug, Clone)]
pub struct RefFiL {
    core: ModelCore,
    model: PromptedBackbone,
    cdap: Option<CdapGenerator>,
    fixed_prompt: Option<ParamId>,
    store: GlobalPromptStore,
    pending_uploads: Vec<LocalPromptGroup>,
    cfg: RefFiLConfig,
    current_task: usize,
    telemetry: Telemetry,
}

impl RefFiL {
    /// Builds RefFiL (or an ablated variant, per `cfg.flags`).
    pub fn new(mut cfg: RefFiLConfig) -> Self {
        if cfg.prompt_only {
            // Prompt-only exchange only works if local training matches what
            // actually travels: after the task-0 warm-up the shared backbone
            // is hard-frozen (not just slowed), so prompts adapt against the
            // exact weights every other client and the server hold. Without
            // this, clients co-adapt prompts to local backbone drift that the
            // masked exchange then throws away.
            cfg.method.stable_after_first_task = true;
            cfg.method.stable_backbone_scale = 0.0;
        }
        let mut core = ModelCore::new(cfg.method);
        let bb = cfg.method.backbone;
        let mut rng = StdRng::seed_from_u64(cfg.method.init_seed ^ 0x5265_6646_694c); // "RefFiL"
        let (cdap, fixed_prompt) = if cfg.flags.use_cdap {
            let gen = CdapGenerator::new(
                &mut core.params,
                "cdap",
                CdapConfig {
                    token_dim: bb.token_dim,
                    seq_len: bb.n_patches + 1,
                    prompt_len: cfg.method.prompt_len,
                    hidden: cfg.cdap_hidden,
                    key_dim: cfg.key_dim,
                    max_tasks: cfg.method.max_tasks,
                },
                &mut rng,
            );
            (Some(gen), None)
        } else {
            let p = core.params.insert(
                "refil.fixed_prompt",
                init::prompt_normal(&[cfg.method.prompt_len, bb.token_dim], &mut rng),
                true,
            );
            (None, Some(p))
        };
        let model = core.model.clone();
        let dim = cfg.method.prompt_len * bb.token_dim;
        let store = GlobalPromptStore::new(bb.classes, dim)
            .with_cap(cfg.store_cap)
            .with_mode(cfg.cluster_mode);
        Self {
            core,
            model,
            cdap,
            fixed_prompt,
            store,
            pending_uploads: Vec::new(),
            cfg,
            current_task: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The active ablation flags.
    pub fn flags(&self) -> RefFiLFlags {
        self.cfg.flags
    }

    /// Read-only view of the server-side global prompt store.
    pub fn prompt_store(&self) -> &GlobalPromptStore {
        &self.store
    }

    /// Generates the `[b, p, d]` local prompt variable for `tokens`.
    fn local_prompts(
        model: &PromptedBackbone,
        cdap: &Option<CdapGenerator>,
        fixed: Option<ParamId>,
        g: &Graph,
        params: &Params,
        tokens: Var,
        task_id: usize,
    ) -> Var {
        match cdap {
            Some(gen) => gen.generate(g, params, tokens, task_id),
            None => {
                let b = g.shape(tokens)[0];
                let pv = g.param(params, fixed.expect("fixed prompt registered"));
                model.broadcast_prompts(g, pv, b)
            }
        }
    }

    /// Computes the client's Local Prompt Group (Eq. 2): per-class balanced
    /// means of generated prompts over (a subsample of) the local data,
    /// under the given (locally trained) parameters.
    fn compute_lpg(&self, params: &Params, setting: &TrainSetting<'_>) -> LocalPromptGroup {
        let classes = self.model.config().classes;
        let dim_in = self.model.config().in_dim;
        let p = self.cfg.method.prompt_len;
        let d = self.model.config().token_dim;
        let mut by_class: Vec<Vec<&refil_data::Sample>> = vec![Vec::new(); classes];
        for s in setting.samples {
            if by_class[s.label].len() < self.cfg.lpg_max_samples {
                by_class[s.label].push(s);
            }
        }
        let mut prompts = Vec::new();
        for (k, samples) in by_class.iter().enumerate() {
            if samples.is_empty() {
                continue;
            }
            let mut data = Vec::with_capacity(samples.len() * dim_in);
            for s in samples {
                data.extend_from_slice(&s.features);
            }
            let x = Tensor::from_vec(data, &[samples.len(), dim_in]);
            let g = Graph::new();
            let (_, tokens) = self.model.tokenize(&g, params, &x);
            let pv = Self::local_prompts(
                &self.model,
                &self.cdap,
                self.fixed_prompt,
                &g,
                params,
                tokens,
                setting.task,
            );
            let vals = g.value(pv); // [n, p, d]
            let mut mean = vec![0.0f32; p * d];
            for row in vals.data().chunks(p * d) {
                for (m, &x) in mean.iter_mut().zip(row) {
                    *m += x;
                }
            }
            let inv = 1.0 / samples.len() as f32;
            for m in &mut mean {
                *m *= inv;
            }
            prompts.push((k, mean));
        }
        LocalPromptGroup {
            client_id: setting.client_id,
            prompts,
        }
    }

    /// Task-ID-free prediction: run the model under every task key and keep,
    /// per sample, the prediction whose softmax confidence is highest.
    ///
    /// This removes the framework's dependence on knowing the test domain
    /// (the paper's acknowledged limitation), trading `max_tasks` forward
    /// passes per batch for task-agnostic deployment.
    pub fn predict_task_free(&self, global: &[f32], features: &Tensor) -> Vec<usize> {
        let ctx = self.eval_context(global, true);
        let mut evaluator = ctx.evaluator();
        evaluator.predict_domain(features, 0)
    }

    fn predict_with_task(&self, global: &[f32], features: &Tensor, task_id: usize) -> Vec<usize> {
        let ctx = self.eval_context(global, false);
        let mut evaluator = ctx.evaluator();
        evaluator.predict_domain(features, task_id)
    }

    /// Builds the shared read-only evaluation view under `global`.
    fn eval_context(&self, global: &[f32], task_free: bool) -> RefFiLEvalCtx<'_> {
        RefFiLEvalCtx {
            strat: self,
            params: self.core.eval_params(global),
            tasks: self.cfg.method.max_tasks.min(self.current_task + 1).max(1),
            task_free,
        }
    }
}

/// Shared read-only eval view: the prompt machinery borrowed from the
/// strategy plus a parameter snapshot under the evaluated global vector.
struct RefFiLEvalCtx<'a> {
    strat: &'a RefFiL,
    params: Params,
    /// Task keys to sweep when inferring the task per sample by confidence.
    tasks: usize,
    /// Ignore the domain hint and sweep all task keys (Limitations extension).
    task_free: bool,
}

impl EvalContext for RefFiLEvalCtx<'_> {
    fn evaluator(&self) -> Box<dyn DomainEvaluator + '_> {
        Box::new(RefFiLEvaluator {
            ctx: self,
            session: InferenceSession::new(),
        })
    }
}

struct RefFiLEvaluator<'a> {
    ctx: &'a RefFiLEvalCtx<'a>,
    session: InferenceSession,
}

impl RefFiLEvaluator<'_> {
    /// One prompted forward under task key `task_id`; `read` consumes the
    /// logits while the graph (and its recyclable buffers) is still alive.
    fn forward_with_task<R>(
        &mut self,
        features: &Tensor,
        task_id: usize,
        read: impl FnOnce(&Graph, Var) -> R,
    ) -> R {
        let ctx = self.ctx;
        let (strat, params) = (ctx.strat, &ctx.params);
        self.session.forward(|g| {
            let (feat, tokens) = strat.model.tokenize(g, params, features);
            let prompts = RefFiL::local_prompts(
                &strat.model,
                &strat.cdap,
                strat.fixed_prompt,
                g,
                params,
                tokens,
                task_id,
            );
            let out = strat
                .model
                .forward_from_tokens(g, params, feat, tokens, Some(prompts));
            read(g, out.logits)
        })
    }
}

impl DomainEvaluator for RefFiLEvaluator<'_> {
    fn predict_domain(&mut self, features: &Tensor, domain: usize) -> Vec<usize> {
        if !self.ctx.task_free {
            // The CDAP generator is conditioned on the local task ID (the
            // paper's acknowledged dependence); evaluation on domain d uses
            // key d.
            return self.forward_with_task(features, domain, |g, logits| g.argmax_last(logits));
        }
        // Extension: ignore the hint, run the model under every task key and
        // keep, per sample, the prediction whose softmax confidence is
        // highest.
        let b = features.shape()[0];
        let k = self.ctx.strat.model.config().classes;
        let mut best_conf = vec![f32::NEG_INFINITY; b];
        let mut best_pred = vec![0usize; b];
        for task_id in 0..self.ctx.tasks {
            self.forward_with_task(features, task_id, |g, logits| {
                let probs = g.softmax_last(logits);
                g.with_value(probs, |t| {
                    for (i, row) in t.data().chunks(k).enumerate() {
                        let (pred, &conf) = row
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1))
                            .expect("non-empty logits");
                        if conf > best_conf[i] {
                            best_conf[i] = conf;
                            best_pred[i] = pred;
                        }
                    }
                });
            });
        }
        best_pred
    }
}

/// Read-only per-round session context: the candidate prompts and
/// generalized prompt parsed from the decoded [`GlobalPromptBroadcast`]
/// frame at round start, so every client session — possibly on different
/// worker threads — trains against identical, wire-faithful inputs.
struct RefFiLRoundCtx<'a> {
    strat: &'a RefFiL,
    global: &'a [f32],
    task: usize,
    cands: Vec<Vec<f32>>,
    cand_classes: Vec<usize>,
    generalized: Option<Tensor>,
}

impl RoundContext for RefFiLRoundCtx<'_> {
    fn train_client(&self, setting: &TrainSetting<'_>, telemetry: &Telemetry) -> SessionOutput {
        let strat = self.strat;
        let mut core = strat.core.session(self.global);
        let flags = strat.cfg.flags;
        let model = &strat.model;
        let cdap = &strat.cdap;
        let fixed = strat.fixed_prompt;
        let task = self.task;
        let p_len = strat.cfg.method.prompt_len;
        let d = model.config().token_dim;
        let cands = &self.cands;
        let cand_classes = &self.cand_classes;
        let generalized = &self.generalized;
        let tau = strat.cfg.temperature.at_task(task + 1);
        let n_pos = if setting.group == ClientGroup::Between {
            2
        } else {
            1
        };
        if flags.use_dpcl {
            telemetry.observe("dpcl.temperature", f64::from(tau));
            telemetry.observe("dpcl.candidates", cands.len() as f64);
        }

        let train_span = telemetry.span("local_train");
        core.train_local(
            setting,
            |g, p, b| {
                let bsz = b.len();
                let (feat, tokens) = model.tokenize(g, p, &b.features);
                let prompts = RefFiL::local_prompts(model, cdap, fixed, g, p, tokens, task);
                // L_CE: classification with locally generated prompts (Eq. 10).
                let out_l = model.forward_from_tokens(g, p, feat, tokens, Some(prompts));
                let mut loss = g.cross_entropy(out_l.logits, &b.labels);
                // L_GPL: same input under the generalized global prompt (Eq. 9).
                if let Some(gp) = generalized {
                    let gpv = g.constant(gp.clone());
                    let gp_b = model.broadcast_prompts(g, gpv, bsz);
                    let out_g = model.forward_from_tokens(g, p, feat, tokens, Some(gp_b));
                    let gpl = g.cross_entropy(out_g.logits, &b.labels);
                    loss = g.add(loss, gpl);
                }
                // L_DPCL: contrastive prompt separation (Eq. 6).
                if !cands.is_empty() {
                    let u = g.reshape(prompts, &[bsz, p_len * d]);
                    if let Some(dl) = dpcl_loss(g, u, cands, cand_classes, &b.labels, n_pos, tau) {
                        loss = g.add(loss, dl);
                    }
                }
                loss
            },
            |_| {},
        );
        drop(train_span);

        // Upload: updated model + class-wise LPGs (Algorithm 1 line 29). The
        // LPG travels as a PromptUpload frame applied in client-id order;
        // the runner accounts its encoded size under
        // `wire.prompt_upload_bytes`.
        let mut merge: Option<WireMessage> = None;
        if flags.needs_store() {
            let lpg = {
                let _span = telemetry.span("compute_lpg");
                strat.compute_lpg(&core.params, setting)
            };
            let uploads: Vec<LocalPromptGroup> = if strat.cfg.weighted_prompt_sharing {
                // Ablation: resource-rich clients push proportionally more
                // copies, skewing the global prompt pool toward big clients.
                let copies = (setting.samples.len() / 50).max(1);
                vec![lpg; copies]
            } else {
                vec![lpg]
            };
            merge = Some(WireMessage::PromptUpload(PromptUpload {
                client_id: setting.client_id as u64,
                groups: uploads.iter().map(LocalPromptGroup::to_wire).collect(),
            }));
        }
        SessionOutput {
            update: ClientUpdate {
                flat: core.flat(),
                weight: setting.samples.len() as f32,
            },
            merge,
        }
    }
}

impl FdilStrategy for RefFiL {
    fn name(&self) -> String {
        let f = self.cfg.flags;
        if f == RefFiLFlags::default() {
            "RefFiL".into()
        } else {
            format!(
                "RefFiL[{}{}{}]",
                if f.use_cdap { "C" } else { "-" },
                if f.use_gpl { "G" } else { "-" },
                if f.use_dpcl { "D" } else { "-" }
            )
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    fn init_global(&mut self) -> Vec<f32> {
        self.core.flat()
    }

    fn on_task_start(&mut self, task: usize, _global: &[f32]) {
        self.current_task = task;
    }

    fn exchange_mask(&self, task: u64) -> Option<Vec<u32>> {
        if !self.cfg.prompt_only || task == 0 {
            // Task 0 is the collaborative warm-up: the shared backbone is
            // still being learned from scratch, so the full model is
            // exchanged. From task 1 on the backbone runs in its stabilized
            // regime (`stable_after_first_task`) and stays at the last
            // globally-aggregated weights; only the prompt-side slice moves.
            return None;
        }
        // Flat-layout indices of everything that is *not* the shared
        // backbone, using the same prefixes the training loop treats as
        // shared (`backbone.extractor*`, `backbone.block*`, `backbone.cls*`,
        // see `ModelCore::train_local`): the CDAP generator or fixed prompt
        // plus the tokenizer. The driver sends only these coordinates; the
        // server keeps its broadcast values for the rest, which exactly
        // matches local training because `new` hard-froze those weights
        // after the warm-up task.
        let mut mask = Vec::new();
        let mut off = 0u32;
        for (_, e) in self.core.params.iter() {
            let n = e.value.numel() as u32;
            let shared_backbone = e.name.starts_with("backbone.extractor")
                || e.name.starts_with("backbone.block")
                || e.name.starts_with("backbone.cls");
            if !shared_backbone {
                mask.extend(off..off + n);
            }
            off += n;
        }
        Some(mask)
    }

    fn round_broadcast(&self, task: usize, round: usize) -> Option<WireMessage> {
        if !self.cfg.flags.needs_store() {
            return None;
        }
        // Server broadcast contents, snapshotted once per round: the store
        // only mutates in `merge_client`/`on_round_end`, so every session
        // this round decodes the same candidates and generalized prompt.
        let (cands, cand_classes) = if self.cfg.flags.use_dpcl {
            self.store.candidates()
        } else {
            (Vec::new(), Vec::new())
        };
        let candidates = cand_classes
            .into_iter()
            .zip(cands)
            .map(|(k, v)| (k as u32, v))
            .collect();
        let generalized = if self.cfg.flags.use_gpl {
            self.store.generalized_prompt()
        } else {
            None
        };
        Some(WireMessage::GlobalPromptBroadcast(GlobalPromptBroadcast {
            task: task as u32,
            round: round as u32,
            candidates,
            generalized,
        }))
    }

    fn round_ctx<'a>(
        &'a self,
        task: usize,
        _round: usize,
        global: &'a [f32],
        broadcast: Option<&'a WireMessage>,
    ) -> Box<dyn RoundContext + 'a> {
        let p_len = self.cfg.method.prompt_len;
        let d = self.model.config().token_dim;
        // Sessions train on exactly what came over the wire: the decoded
        // GlobalPromptBroadcast, never private server state.
        let (cands, cand_classes, generalized) = match broadcast {
            Some(WireMessage::GlobalPromptBroadcast(b)) => {
                let mut cands = Vec::with_capacity(b.candidates.len());
                let mut classes = Vec::with_capacity(b.candidates.len());
                for (k, v) in &b.candidates {
                    classes.push(*k as usize);
                    cands.push(v.clone());
                }
                let generalized = b
                    .generalized
                    .as_ref()
                    .map(|v| Tensor::from_vec(v.clone(), &[p_len, d]));
                (cands, classes, generalized)
            }
            _ => (Vec::new(), Vec::new(), None),
        };
        Box::new(RefFiLRoundCtx {
            strat: self,
            global,
            task,
            cands,
            cand_classes,
            generalized,
        })
    }

    fn merge_client(
        &mut self,
        _task: usize,
        _round: usize,
        _client_id: usize,
        message: WireMessage,
    ) {
        if let WireMessage::PromptUpload(upload) = message {
            self.pending_uploads
                .extend(upload.groups.into_iter().map(LocalPromptGroup::from_wire));
        }
    }

    fn on_round_end(&mut self, _task: usize, _round: usize, _global: &[f32]) {
        if !self.pending_uploads.is_empty() {
            let uploads = std::mem::take(&mut self.pending_uploads);
            let telemetry = self.telemetry.clone();
            self.store.ingest_traced(&uploads, &telemetry);
        }
    }

    fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize> {
        self.predict_with_task(global, features, self.current_task)
    }

    fn eval_ctx<'a>(&'a self, global: &'a [f32]) -> Box<dyn EvalContext + 'a> {
        Box::new(self.eval_context(global, self.cfg.task_free_inference))
    }

    fn cls_embeddings(&mut self, global: &[f32], features: &Tensor) -> Vec<Vec<f32>> {
        self.core.load(global);
        let g = Graph::new();
        let (feat, tokens) = self.model.tokenize(&g, &self.core.params, features);
        let prompts = Self::local_prompts(
            &self.model,
            &self.cdap,
            self.fixed_prompt,
            &g,
            &self.core.params,
            tokens,
            self.current_task,
        );
        let out =
            self.model
                .forward_from_tokens(&g, &self.core.params, feat, tokens, Some(prompts));
        let cls = g.value(out.cls);
        let d = cls.shape()[1];
        cls.data().chunks(d).map(<[f32]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refil_data::{DatasetSpec, DomainSpec};
    use refil_fed::{FdilRunner, IncrementConfig, RunConfig};
    use refil_nn::models::BackboneConfig;

    fn tiny_cfg() -> RefFiLConfig {
        RefFiLConfig::new(MethodConfig {
            backbone: BackboneConfig {
                in_dim: 8,
                extractor_width: 16,
                extractor_depth: 1,
                n_patches: 2,
                token_dim: 8,
                heads: 2,
                blocks: 1,
                classes: 3,
                extractor: refil_nn::models::ExtractorKind::ResidualMlp,
            },
            lr: 0.05,
            prompt_len: 2,
            max_tasks: 2,
            ..MethodConfig::default()
        })
    }

    fn tiny_dataset() -> refil_data::FdilDataset {
        DatasetSpec {
            name: "tiny".into(),
            classes: 3,
            feature_dim: 8,
            proto_scale: 2.5,
            within_std: 0.4,
            test_fraction: 0.3,
            signature_dim: 2,
            signature_scale: 0.6,
            domains: vec![
                DomainSpec::new("d0", 150, 0.15, 0.05),
                DomainSpec::new("d1", 150, 0.3, 0.4).with_collision(1.0),
            ],
        }
        .generate(11)
    }

    fn tiny_run_config() -> RunConfig {
        RunConfig {
            increment: IncrementConfig {
                initial_clients: 4,
                select_per_round: 3,
                increment_per_task: 1,
                transition_fraction: 0.8,
                rounds_per_task: 3,
            },
            local_epochs: 1,
            batch_size: 16,
            quantity_sigma: 0.5,
            eval_batch: 128,
            dropout_prob: 0.0,
            seed: 13,
            threads: 0,
            net: Default::default(),
            wire: Default::default(),
        }
    }

    #[test]
    fn reffil_runs_full_protocol_and_learns() {
        let ds = tiny_dataset();
        let mut strat = RefFiL::new(tiny_cfg());
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert_eq!(res.domain_acc.len(), 2);
        assert!(res.domain_acc[0][0] > 50.0, "{:?}", res.domain_acc);
        // The global prompt store must have been populated.
        assert!(!strat.prompt_store().is_empty());
        // Prompt traffic must be accounted for.
        assert!(res.traffic.up_bytes > res.traffic.down_bytes / 2);
    }

    #[test]
    fn prompt_only_mask_covers_exactly_the_non_extractor_params() {
        let full = RefFiL::new(tiny_cfg());
        assert_eq!(full.exchange_mask(1), None, "default exchanges everything");

        let strat = RefFiL::new(tiny_cfg().with_prompt_only(true));
        assert_eq!(
            strat.exchange_mask(0),
            None,
            "task 0 is the full-exchange backbone warm-up"
        );
        let mask = strat.exchange_mask(1).expect("prompt-only mode masks");
        let total = strat.core.params.num_scalars();
        assert!(!mask.is_empty());
        assert!(
            (mask.len() as usize) < total,
            "mask must be a strict subset"
        );
        assert!(
            mask.windows(2).all(|w| w[0] < w[1]),
            "mask indices strictly ascending"
        );
        // Recompute coverage from the named layout: a coordinate is in the
        // mask iff its parameter is not shared-backbone.
        let mut expected = Vec::new();
        let mut off = 0u32;
        for (_, e) in strat.core.params.iter() {
            let n = e.value.numel() as u32;
            let shared = e.name.starts_with("backbone.extractor")
                || e.name.starts_with("backbone.block")
                || e.name.starts_with("backbone.cls");
            if !shared {
                expected.extend(off..off + n);
            }
            off += n;
        }
        assert_eq!(off as usize, total);
        assert_eq!(mask, expected);
    }

    #[test]
    fn prompt_only_run_learns_and_shrinks_uplink() {
        let ds = tiny_dataset();
        let mut strat = RefFiL::new(tiny_cfg().with_prompt_only(true));
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert_eq!(res.domain_acc.len(), 2);
        assert!(res.domain_acc[0][0] > 50.0, "{:?}", res.domain_acc);
        // Task 0 is the full-exchange warm-up, so its raw and encoded
        // columns match; from task 1 on the masked exchange must actually
        // shrink the uplink.
        let warm: Vec<_> = res.rounds.iter().filter(|r| r.task == 0).collect();
        assert!(!warm.is_empty());
        for r in &warm {
            assert_eq!(
                r.uplink_raw_bytes, r.uplink_encoded_bytes,
                "warm-up is dense"
            );
        }
        let raw: u64 = res
            .rounds
            .iter()
            .filter(|r| r.task >= 1)
            .map(|r| r.uplink_raw_bytes)
            .sum();
        let encoded: u64 = res
            .rounds
            .iter()
            .filter(|r| r.task >= 1)
            .map(|r| r.uplink_encoded_bytes)
            .sum();
        assert!(raw > 0 && encoded > 0);
        assert!(
            encoded * 2 < raw,
            "prompt-only uplink should be well under half the dense cost \
             (raw {raw}, encoded {encoded})"
        );
    }

    #[test]
    fn ablated_variants_run() {
        let ds = tiny_dataset();
        for flags in [
            RefFiLFlags {
                use_cdap: true,
                use_gpl: false,
                use_dpcl: false,
            },
            RefFiLFlags {
                use_cdap: false,
                use_gpl: true,
                use_dpcl: false,
            },
            RefFiLFlags {
                use_cdap: false,
                use_gpl: true,
                use_dpcl: true,
            },
            RefFiLFlags {
                use_cdap: true,
                use_gpl: true,
                use_dpcl: false,
            },
        ] {
            let mut strat = RefFiL::new(tiny_cfg().with_flags(flags));
            let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
            assert_eq!(res.domain_acc.len(), 2, "flags {flags:?}");
        }
    }

    #[test]
    fn name_encodes_flags() {
        assert_eq!(RefFiL::new(tiny_cfg()).name(), "RefFiL");
        let ablated = RefFiL::new(tiny_cfg().with_flags(RefFiLFlags {
            use_cdap: true,
            use_gpl: false,
            use_dpcl: false,
        }));
        assert_eq!(ablated.name(), "RefFiL[C--]");
    }

    #[test]
    fn cdap_off_uses_fixed_prompt() {
        let strat = RefFiL::new(tiny_cfg().with_flags(RefFiLFlags {
            use_cdap: false,
            use_gpl: true,
            use_dpcl: true,
        }));
        assert!(strat.cdap.is_none());
        assert!(strat.fixed_prompt.is_some());
        assert!(strat.core.params.id("refil.fixed_prompt").is_some());
    }

    #[test]
    fn lpg_covers_local_classes() {
        let ds = tiny_dataset();
        let mut strat = RefFiL::new(tiny_cfg());
        let flat = strat.init_global();
        strat.core.load(&flat);
        let samples = &ds.domains[0].train[..30];
        let setting = TrainSetting {
            client_id: 5,
            task: 0,
            round: 0,
            group: ClientGroup::New,
            samples,
            local_epochs: 1,
            batch_size: 16,
            seed: 1,
        };
        let lpg = strat.compute_lpg(&strat.core.params, &setting);
        assert_eq!(lpg.client_id, 5);
        let mut classes: Vec<usize> = lpg.prompts.iter().map(|(k, _)| *k).collect();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes.len(), lpg.prompts.len(), "duplicate class in LPG");
        let d = strat.cfg.method.prompt_len * strat.model.config().token_dim;
        for (_, v) in &lpg.prompts {
            assert_eq!(v.len(), d);
        }
    }

    #[test]
    fn task_free_inference_predicts_valid_classes() {
        let ds = tiny_dataset();
        let mut strat = RefFiL::new(tiny_cfg().with_task_free_inference(true));
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert_eq!(res.domain_acc.len(), 2);
        let mut data = Vec::new();
        for s in &ds.domains[0].test[..6] {
            data.extend_from_slice(&s.features);
        }
        let x = Tensor::from_vec(data, &[6, 8]);
        let preds = strat.predict_task_free(&res.final_global, &x);
        assert_eq!(preds.len(), 6);
        assert!(preds.iter().all(|&p| p < 3));
    }

    #[test]
    fn domain_conditioned_prediction_differs() {
        let ds = tiny_dataset();
        let mut strat = RefFiL::new(tiny_cfg());
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        let _ = res;
        // After training, predictions conditioned on different task keys can
        // differ (the task key modulates the generated prompts).
        let flat = strat.core.flat();
        let mut data = Vec::new();
        for s in &ds.domains[1].test[..8] {
            data.extend_from_slice(&s.features);
        }
        let x = Tensor::from_vec(data, &[8, 8]);
        let p0 = strat.predict_domain(&flat, &x, 0);
        let p1 = strat.predict_domain(&flat, &x, 1);
        assert_eq!(p0.len(), 8);
        assert_eq!(p1.len(), 8);
    }
}
