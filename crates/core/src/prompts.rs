//! Global prompt sharing and clustering (paper Eq. 2–5, 8).
//!
//! Clients upload **Local Prompt Groups** (LPGs): per-class balanced means of
//! their generated prompts (Eq. 2 — unweighted averaging so resource-rich
//! clients cannot skew the global prompt set). The server pools LPGs, then
//! clusters each class's prompts **domain-wise with FINCH** (Eq. 4) and keeps
//! one representative per cluster (Eq. 5), fixing the "80 % of participants
//! just moved to the new domain" imbalance that plain averaging suffers from.
//! Averaging the representatives across clusters and classes yields the
//! generalized prompt `P̄^g` (Eq. 8) used by the GPL loss.

use serde::{Deserialize, Serialize};

use refil_clustering::{cluster_means, finch_traced, kmeans};
use refil_telemetry::Telemetry;

/// How the server condenses each class's LPG pool into representatives —
/// FINCH is the paper's choice; k-means and plain averaging are the
/// `ablation_clustering` comparators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterMode {
    /// Parameter-free first-neighbour clustering (the paper, Eq. 4–5).
    Finch,
    /// Lloyd's k-means with a fixed cluster count.
    Kmeans(usize),
    /// No clustering: a single mean per class (the "directly averaging all
    /// prompts" strawman the paper argues against).
    Average,
}

/// One client's per-class prompt means for a round (Eq. 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalPromptGroup {
    /// Uploading client.
    pub client_id: usize,
    /// `(class, flattened p*d prompt)` pairs for classes present locally.
    pub prompts: Vec<(usize, Vec<f32>)>,
}

impl LocalPromptGroup {
    /// Serialized payload size in bytes (for traffic accounting).
    pub fn byte_len(&self) -> u64 {
        self.prompts
            .iter()
            .map(|(_, v)| 8 + 4 * v.len() as u64)
            .sum()
    }

    /// The wire envelope this group travels in (ids narrowed to the codec's
    /// fixed-width fields).
    pub fn to_wire(&self) -> refil_fed::PromptGroup {
        refil_fed::PromptGroup {
            client_id: self.client_id as u64,
            prompts: self
                .prompts
                .iter()
                .map(|(k, v)| (*k as u32, v.clone()))
                .collect(),
        }
    }

    /// Reconstructs the group from its decoded wire envelope.
    pub fn from_wire(g: refil_fed::PromptGroup) -> Self {
        Self {
            client_id: g.client_id as usize,
            prompts: g
                .prompts
                .into_iter()
                .map(|(k, v)| (k as usize, v))
                .collect(),
        }
    }
}

/// Server-side global prompt state: a bounded per-class history of uploaded
/// LPGs, FINCH-clustered into representatives after every round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalPromptStore {
    classes: usize,
    dim: usize,
    /// `pool[k]` = recent LPG history for class `k` (FIFO, bounded).
    pool: Vec<Vec<Vec<f32>>>,
    /// `reps[k]` = representative prompts for class `k` (cluster means).
    reps: Vec<Vec<Vec<f32>>>,
    /// Cap on stored representatives per class.
    per_class_cap: usize,
    /// Cap on the per-class LPG history.
    pool_cap: usize,
    /// Condensation algorithm.
    mode: ClusterMode,
}

impl GlobalPromptStore {
    /// Creates an empty store for `classes` classes of flattened prompt
    /// dimension `dim`.
    pub fn new(classes: usize, dim: usize) -> Self {
        Self {
            classes,
            dim,
            pool: vec![Vec::new(); classes],
            reps: vec![Vec::new(); classes],
            per_class_cap: 16,
            pool_cap: 64,
            mode: ClusterMode::Finch,
        }
    }

    /// Overrides the per-class representative cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.per_class_cap = cap.max(1);
        self
    }

    /// Overrides the per-class LPG history cap.
    pub fn with_pool_cap(mut self, cap: usize) -> Self {
        self.pool_cap = cap.max(2);
        self
    }

    /// Overrides the condensation algorithm (ablation support).
    pub fn with_mode(mut self, mode: ClusterMode) -> Self {
        self.mode = mode;
        self
    }

    /// Flattened prompt dimension `p * d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether any representatives exist yet.
    pub fn is_empty(&self) -> bool {
        self.reps.iter().all(Vec::is_empty)
    }

    /// Total representative count across classes.
    pub fn total_reps(&self) -> usize {
        self.reps.iter().map(Vec::len).sum()
    }

    /// Representatives for class `k` (`P̂^{g,k}`, Eq. 5).
    pub fn class_representatives(&self, k: usize) -> &[Vec<f32>] {
        &self.reps[k]
    }

    /// Ingests a round of uploads: each LPG joins its class's bounded FIFO
    /// history, then every touched class is re-clustered with FINCH (finest
    /// partition, Eq. 4–5) and the cluster means become the representatives.
    ///
    /// The history preserves prompts from domains whose clients no longer
    /// participate — the store is the framework's only cross-task memory,
    /// and it is rehearsal-free (no raw data, only `p*d`-float prompts).
    ///
    /// # Panics
    ///
    /// Panics if any prompt has the wrong dimension or class index.
    pub fn ingest(&mut self, uploads: &[LocalPromptGroup]) {
        self.ingest_traced(uploads, &Telemetry::disabled());
    }

    /// [`GlobalPromptStore::ingest`] wrapped in a `prompt_ingest` telemetry
    /// span; FINCH re-clustering spans nest inside it, and the resulting
    /// pool and representative sizes are recorded as histogram observations.
    ///
    /// # Panics
    ///
    /// Panics if any prompt has the wrong dimension or class index.
    pub fn ingest_traced(&mut self, uploads: &[LocalPromptGroup], telemetry: &Telemetry) {
        let _span = telemetry.span("prompt_ingest");
        let mut touched = vec![false; self.classes];
        for up in uploads {
            for (k, v) in &up.prompts {
                assert!(*k < self.classes, "class {k} out of range");
                assert_eq!(v.len(), self.dim, "prompt dim mismatch");
                let pool = &mut self.pool[*k];
                pool.push(v.clone());
                if pool.len() > self.pool_cap {
                    pool.remove(0);
                }
                touched[*k] = true;
            }
        }
        for (k, was_touched) in touched.into_iter().enumerate() {
            if !was_touched {
                continue;
            }
            let pool = &self.pool[k];
            if pool.len() == 1 {
                self.reps[k] = pool.clone();
                continue;
            }
            let mut means = match self.mode {
                ClusterMode::Finch => {
                    let result = finch_traced(pool, telemetry);
                    // The finest partition separates domains (prompts from
                    // different domains are unlikely to be first neighbours);
                    // when it exceeds the cap, fall back to the hierarchy
                    // level closest to the cap.
                    let partition = if result.finest().num_clusters > self.per_class_cap {
                        result.closest_to(self.per_class_cap)
                    } else {
                        result.finest()
                    };
                    cluster_means(pool, &partition.labels, partition.num_clusters)
                }
                ClusterMode::Kmeans(kk) => kmeans(pool, kk.max(1), 17, 50).centroids,
                ClusterMode::Average => cluster_means(pool, &vec![0; pool.len()], 1),
            };
            means.truncate(self.per_class_cap);
            self.reps[k] = means;
        }
        telemetry.observe(
            "prompt.pool_size",
            self.pool.iter().map(Vec::len).sum::<usize>() as f64,
        );
        telemetry.observe("prompt.reps", self.total_reps() as f64);
    }

    /// All representatives as a flat candidate list plus each one's class —
    /// the sampling set for the DPCL loss.
    pub fn candidates(&self) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut cands = Vec::with_capacity(self.total_reps());
        let mut classes = Vec::with_capacity(self.total_reps());
        for (k, reps) in self.reps.iter().enumerate() {
            for r in reps {
                cands.push(r.clone());
                classes.push(k);
            }
        }
        (cands, classes)
    }

    /// The generalized global prompt `P̄^g` (Eq. 8): the per-class average of
    /// clustered representatives, averaged across classes into a single
    /// flattened prompt. `None` while the store is empty.
    pub fn generalized_prompt(&self) -> Option<Vec<f32>> {
        let mut acc = vec![0.0f32; self.dim];
        let mut classes_with = 0usize;
        for reps in &self.reps {
            if reps.is_empty() {
                continue;
            }
            let mut class_mean = vec![0.0f32; self.dim];
            for r in reps {
                for (m, &x) in class_mean.iter_mut().zip(r) {
                    *m += x;
                }
            }
            for (a, m) in acc.iter_mut().zip(&class_mean) {
                *a += m / reps.len() as f32;
            }
            classes_with += 1;
        }
        if classes_with == 0 {
            return None;
        }
        for a in &mut acc {
            *a /= classes_with as f32;
        }
        Some(acc)
    }

    /// Broadcast payload size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.reps
            .iter()
            .map(|r| r.iter().map(|v| 4 * v.len() as u64).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lpg(client: usize, class: usize, v: Vec<f32>) -> LocalPromptGroup {
        LocalPromptGroup {
            client_id: client,
            prompts: vec![(class, v)],
        }
    }

    #[test]
    fn ingest_clusters_two_domains() {
        let mut store = GlobalPromptStore::new(2, 2);
        // Class 0 prompts from two distinct "domains".
        store.ingest(&[
            lpg(0, 0, vec![1.0, 0.0]),
            lpg(1, 0, vec![0.95, 0.02]),
            lpg(2, 0, vec![0.0, 1.0]),
            lpg(3, 0, vec![0.03, 0.98]),
        ]);
        assert_eq!(store.class_representatives(0).len(), 2);
        assert!(store.class_representatives(1).is_empty());
    }

    #[test]
    fn previous_reps_survive_new_rounds() {
        let mut store = GlobalPromptStore::new(1, 2);
        store.ingest(&[lpg(0, 0, vec![1.0, 0.0]), lpg(1, 0, vec![0.97, 0.03])]);
        assert_eq!(store.total_reps(), 1);
        // A later round with only the other domain's prompts must not erase
        // the first domain's cluster: the LPG history keeps it alive.
        store.ingest(&[lpg(2, 0, vec![0.0, 1.0]), lpg(3, 0, vec![0.02, 0.97])]);
        assert_eq!(store.class_representatives(0).len(), 2);
    }

    #[test]
    fn cluster_modes_condense_differently() {
        let uploads = vec![
            lpg(0, 0, vec![1.0, 0.0]),
            lpg(1, 0, vec![0.97, 0.03]),
            lpg(2, 0, vec![0.0, 1.0]),
            lpg(3, 0, vec![0.02, 0.97]),
        ];
        let mut f = GlobalPromptStore::new(1, 2);
        f.ingest(&uploads);
        assert_eq!(f.class_representatives(0).len(), 2);
        let mut a = GlobalPromptStore::new(1, 2).with_mode(ClusterMode::Average);
        a.ingest(&uploads);
        assert_eq!(a.class_representatives(0).len(), 1);
        let mut k = GlobalPromptStore::new(1, 2).with_mode(ClusterMode::Kmeans(3));
        k.ingest(&uploads);
        assert_eq!(k.class_representatives(0).len(), 3);
    }

    #[test]
    fn pool_cap_bounds_history() {
        let mut store = GlobalPromptStore::new(1, 2).with_pool_cap(4);
        for i in 0..20 {
            store.ingest(&[lpg(i, 0, vec![i as f32, 1.0])]);
        }
        assert!(store.pool[0].len() <= 4);
    }

    #[test]
    fn cap_limits_representatives() {
        let mut store = GlobalPromptStore::new(1, 2).with_cap(2);
        // Four orthogonal-ish directions would give up to 4 clusters.
        store.ingest(&[
            lpg(0, 0, vec![1.0, 0.0]),
            lpg(1, 0, vec![-1.0, 0.0]),
            lpg(2, 0, vec![0.0, 1.0]),
            lpg(3, 0, vec![0.0, -1.0]),
        ]);
        assert!(store.class_representatives(0).len() <= 2);
    }

    #[test]
    fn generalized_prompt_is_mean_of_class_means() {
        let mut store = GlobalPromptStore::new(2, 2);
        store.ingest(&[lpg(0, 0, vec![2.0, 0.0]), lpg(1, 1, vec![0.0, 4.0])]);
        let p = store.generalized_prompt().unwrap();
        assert_eq!(p, vec![1.0, 2.0]);
    }

    #[test]
    fn empty_store_has_no_generalized_prompt() {
        let store = GlobalPromptStore::new(3, 4);
        assert!(store.generalized_prompt().is_none());
        assert!(store.is_empty());
        assert_eq!(store.candidates().0.len(), 0);
    }

    #[test]
    fn candidates_align_with_classes() {
        let mut store = GlobalPromptStore::new(2, 2);
        store.ingest(&[lpg(0, 0, vec![1.0, 0.0]), lpg(1, 1, vec![0.0, 1.0])]);
        let (cands, classes) = store.candidates();
        assert_eq!(cands.len(), classes.len());
        assert_eq!(classes, vec![0, 1]);
    }

    #[test]
    fn byte_len_counts_floats() {
        let mut store = GlobalPromptStore::new(1, 3);
        store.ingest(&[lpg(0, 0, vec![1.0, 2.0, 3.0])]);
        assert_eq!(store.byte_len(), 12);
        let up = lpg(0, 0, vec![1.0, 2.0, 3.0]);
        assert_eq!(up.byte_len(), 8 + 12);
    }
}
