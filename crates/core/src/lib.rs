//! # refil-core
//!
//! RefFiL — *Rehearsal-free Federated Domain-incremental Learning* — the
//! paper's primary contribution, built on the `refil-nn` substrate and the
//! `refil-fed` protocol driver:
//!
//! * [`CdapGenerator`] — the Client-wise Domain Adaptive Prompt generator
//!   (Eq. 1: LN → MLP → CCDA → FiLM conditioned on a task-key embedding);
//! * [`GlobalPromptStore`] / [`LocalPromptGroup`] — balanced prompt sharing
//!   (Eq. 2–3) and server-side FINCH clustering (Eq. 4–5, 8);
//! * [`dpcl_loss`] — domain-specific prompt contrastive learning (Eq. 6)
//!   with [`TemperatureSchedule`] decay (Eq. 7);
//! * [`RefFiL`] — the complete Algorithm 1 strategy
//!   (`L = L_CE + L_GPL + L_DPCL`, Eq. 11), with [`RefFiLFlags`] exposing the
//!   Table 5 ablation switches.
//!
//! # Examples
//!
//! ```no_run
//! use refil_core::{RefFiL, RefFiLConfig};
//! use refil_continual::MethodConfig;
//! use refil_data::{digits_five, PresetConfig};
//! use refil_fed::{FdilRunner, RunConfig};
//!
//! let dataset = digits_five(PresetConfig::small()).generate(42);
//! let mut strategy = RefFiL::new(RefFiLConfig::new(MethodConfig::default()));
//! let result = FdilRunner::new(RunConfig::default()).run(&dataset, &mut strategy);
//! println!("Avg {:.2}% Last {:.2}%", result.avg_accuracy(), result.last_accuracy());
//! ```

#![warn(missing_docs)]

mod cdap;
mod dpcl;
mod prompts;
mod strategy;
mod temperature;

pub use cdap::{CdapConfig, CdapGenerator};
pub use dpcl::dpcl_loss;
pub use prompts::{ClusterMode, GlobalPromptStore, LocalPromptGroup};
pub use strategy::{RefFiL, RefFiLConfig, RefFiLFlags};
pub use temperature::TemperatureSchedule;
