//! Client-wise Domain Adaptive Prompt (CDAP) generator — paper Eq. 1.
//!
//! `P_m = LT(CCDA(MLP(LN(I)^T)); phi(v))^T`
//!
//! * `LN` — layer norm over the token width `d`;
//! * transpose — `[n+1, d] -> [d, n+1]` per instance;
//! * `MLP` — maps the token axis `n+1 -> p`, producing instance-level,
//!   fine-grained prompt activations `[d, p]`;
//! * `CCDA` — the Cross-Client Domain Adaptation layer, a shared linear
//!   (+GELU) whose weights are hardened by FedAvg aggregation across clients;
//! * `LT` — FiLM-style modulation `alpha_v * (x + lambda_v)` with
//!   `[alpha_v, lambda_v] = phi(v)` predicted from the task-specific key
//!   embedding `v` that links tasks to domain-specific data;
//! * final transpose — `[d, p] -> [p, d]`: `p` prompt tokens of width `d`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use refil_nn::layers::{Embedding, Film, LayerNorm, Linear, Mlp};
use refil_nn::{Graph, Params, Var};

/// CDAP generator hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CdapConfig {
    /// Token width `d`.
    pub token_dim: usize,
    /// Input sequence length `n + 1` (patch tokens + `[CLS]`).
    pub seq_len: usize,
    /// Prompt length `p` (tokens generated per instance).
    pub prompt_len: usize,
    /// Hidden width of the token-axis MLP.
    pub hidden: usize,
    /// Width of the task key embedding `v`.
    pub key_dim: usize,
    /// Maximum number of tasks the key table can hold.
    pub max_tasks: usize,
}

impl Default for CdapConfig {
    fn default() -> Self {
        Self {
            token_dim: 32,
            seq_len: 5,
            prompt_len: 4,
            hidden: 16,
            key_dim: 8,
            max_tasks: 8,
        }
    }
}

/// The CDAP generator `G` (Eq. 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CdapGenerator {
    ln: LayerNorm,
    mlp: Mlp,
    ccda: Linear,
    film: Film,
    task_keys: Embedding,
    cfg: CdapConfig,
}

impl CdapGenerator {
    /// Registers the generator's parameters under `name`.
    pub fn new<R: Rng>(params: &mut Params, name: &str, cfg: CdapConfig, rng: &mut R) -> Self {
        let ln = LayerNorm::new(params, &format!("{name}.ln"), cfg.token_dim);
        let mlp = Mlp::new(
            params,
            &format!("{name}.mlp"),
            cfg.seq_len,
            cfg.hidden,
            cfg.prompt_len,
            rng,
        );
        let ccda = Linear::new(
            params,
            &format!("{name}.ccda"),
            cfg.prompt_len,
            cfg.prompt_len,
            true,
            rng,
        );
        let film = Film::new(
            params,
            &format!("{name}.film"),
            cfg.key_dim,
            cfg.prompt_len,
            rng,
        );
        let task_keys = Embedding::new(
            params,
            &format!("{name}.task_keys"),
            cfg.max_tasks,
            cfg.key_dim,
            rng,
        );
        Self {
            ln,
            mlp,
            ccda,
            film,
            task_keys,
            cfg,
        }
    }

    /// Generator configuration.
    pub fn config(&self) -> &CdapConfig {
        &self.cfg
    }

    /// Generates instance-level prompts.
    ///
    /// `tokens` is the backbone's `I` of shape `[b, n+1, d]`; `task_id` is
    /// the client's local task ID (clamped to the key-table size). Returns a
    /// `[b, p, d]` prompt variable.
    ///
    /// # Panics
    ///
    /// Panics if the token shape does not match the configuration.
    pub fn generate(&self, g: &Graph, params: &Params, tokens: Var, task_id: usize) -> Var {
        let shape = g.shape(tokens);
        assert_eq!(shape.len(), 3, "CDAP expects [b, n+1, d] tokens");
        let (b, seq, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(seq, self.cfg.seq_len, "sequence length mismatch");
        assert_eq!(d, self.cfg.token_dim, "token width mismatch");

        // LN(I), then MLP over the token axis on the transposed view:
        // [b, n+1, d] read as [b, d, n+1] -> [b, d, p]. The layout-aware
        // kernel skips materializing the [b, d, n+1] transpose entirely.
        let normed = self.ln.forward(g, params, tokens);
        let activ = self.mlp.forward_tokens_tn(g, params, normed);
        // Cross-Client Domain Adaptation layer (federated-averaged linear).
        let adapted = self.ccda.forward_tokens(g, params, activ);
        let adapted = g.gelu(adapted);
        // FiLM modulation conditioned on the task key embedding.
        let tid = task_id.min(self.cfg.max_tasks - 1);
        let v = self.task_keys.forward(g, params, &vec![tid; b]); // [b, key]
        let modulated = self.film.forward(g, params, adapted, v); // [b, d, p]
                                                                  // Transpose back: p prompt tokens of width d.
        g.transpose_last(modulated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use refil_nn::Tensor;

    fn cfg() -> CdapConfig {
        CdapConfig {
            token_dim: 8,
            seq_len: 3,
            prompt_len: 2,
            hidden: 8,
            key_dim: 4,
            max_tasks: 3,
        }
    }

    fn setup() -> (Params, CdapGenerator) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let gen = CdapGenerator::new(&mut params, "cdap", cfg(), &mut rng);
        (params, gen)
    }

    #[test]
    fn output_shape_is_prompt_tokens() {
        let (params, gen) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::new();
        let tokens = g.constant(Tensor::randn(&[4, 3, 8], 1.0, &mut rng));
        let prompts = gen.generate(&g, &params, tokens, 0);
        assert_eq!(g.shape(prompts), vec![4, 2, 8]);
    }

    #[test]
    fn prompts_are_instance_level() {
        // Different inputs must give different prompts.
        let (params, gen) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let g = Graph::new();
        let a = Tensor::randn(&[1, 3, 8], 1.0, &mut rng);
        let b = Tensor::randn(&[1, 3, 8], 1.0, &mut rng);
        let pa = g.value(gen.generate(&g, &params, g.constant(a), 0));
        let pb = g.value(gen.generate(&g, &params, g.constant(b), 0));
        assert_ne!(pa.data(), pb.data());
    }

    #[test]
    fn task_id_conditions_the_prompt() {
        let (params, gen) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let g = Graph::new();
        let x = Tensor::randn(&[1, 3, 8], 1.0, &mut rng);
        let p0 = g.value(gen.generate(&g, &params, g.constant(x.clone()), 0));
        let p1 = g.value(gen.generate(&g, &params, g.constant(x), 1));
        assert_ne!(p0.data(), p1.data(), "task key had no effect");
    }

    #[test]
    fn task_id_clamped_to_table() {
        let (params, gen) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let g = Graph::new();
        let x = Tensor::randn(&[1, 3, 8], 1.0, &mut rng);
        // max_tasks = 3, so task 99 clamps to 2 (no panic).
        let p99 = g.value(gen.generate(&g, &params, g.constant(x.clone()), 99));
        let p2 = g.value(gen.generate(&g, &params, g.constant(x), 2));
        assert_eq!(p99.data(), p2.data());
    }

    #[test]
    fn gradients_reach_all_generator_parts() {
        let (mut params, gen) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let g = Graph::new();
        let tokens = g.constant(Tensor::randn(&[2, 3, 8], 1.0, &mut rng));
        let prompts = gen.generate(&g, &params, tokens, 1);
        let sq = g.mul(prompts, prompts);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut params);
        for part in [
            "cdap.mlp.fc1.weight",
            "cdap.ccda.weight",
            "cdap.film.phi.weight",
            "cdap.task_keys.weight",
        ] {
            let id = params.id(part).expect(part);
            assert!(params.grad(id).norm() > 0.0, "no gradient reached {part}");
        }
    }
}
