//! Property-based guarantees of the codec: exhaustive round trips across
//! random shapes for every message kind, exact `encoded_len` accounting,
//! and single-byte corruption always surfacing as a typed [`WireError`] —
//! never a panic, never a silently wrong decode.
//!
//! The vendored proptest harness offers numeric-range strategies and
//! `prop::collection::vec` only, so messages are assembled in the test body
//! from generated primitive pools: a kind selector picks the variant and
//! raw `u32` bit patterns become `f32`s via `from_bits`, which keeps NaNs,
//! infinities, and subnormals in play.

#![cfg(test)]

use proptest::prelude::*;

use crate::compress::{
    f16_from_f32, f16_to_f32, int8_dequantize_one, int8_quantize, CompressionSpec, QuantMode,
};
use crate::frame::HEADER_LEN;
use crate::message::{
    ClientModelUpdate, CompressedModelUpdate, GlobalPromptBroadcast, Hello, MaskedModelUpdate,
    ModelBroadcast, PromptGroup, PromptUpload, RehearsalMemory, Resume, RoundStart, RoundSync,
    RunEnd, SessionAssignment, SessionResult, TaskBegin, TaskEnd, Welcome, WireMessage, WireSample,
};
use crate::{WireError, MAGIC};

/// Bit patterns → f32s; the codec must be bit-exact for every pattern.
fn f32s(bits: &[u32]) -> Vec<f32> {
    bits.iter().copied().map(f32::from_bits).collect()
}

/// Class-indexed prompt list from a pool of bit vectors: entry `i` gets a
/// class id derived from `salt` and its pool vector as the prompt.
fn class_prompts(salt: u32, pool: &[Vec<u32>]) -> Vec<(u32, Vec<f32>)> {
    pool.iter()
        .enumerate()
        .map(|(i, bits)| (salt.wrapping_add(i as u32 * 3), f32s(bits)))
        .collect()
}

/// Deterministically assembles one message of the selected kind from the
/// generated primitive pools. Every kind is reachable; empty pools produce
/// the degenerate shapes (empty models, empty prompt sets) on purpose.
fn build_message(
    kind: usize,
    id: u64,
    aux: u64,
    wbits: u32,
    model_bits: &[u32],
    nested: &[Vec<u32>],
    flag: usize,
) -> WireMessage {
    match kind {
        0 => WireMessage::ModelBroadcast(ModelBroadcast {
            task: id as u32,
            round: aux as u32,
            model: f32s(model_bits),
        }),
        1 => WireMessage::ClientModelUpdate(ClientModelUpdate {
            client_id: id,
            weight: f32::from_bits(wbits),
            model: f32s(model_bits),
        }),
        2 => WireMessage::PromptUpload(PromptUpload {
            client_id: id,
            groups: nested
                .iter()
                .enumerate()
                .map(|(i, bits)| PromptGroup {
                    client_id: id.wrapping_add(i as u64),
                    // Alternate empty and non-empty prompt sets so both
                    // shapes round-trip inside one upload.
                    prompts: if i % 2 == flag {
                        Vec::new()
                    } else {
                        class_prompts(wbits, std::slice::from_ref(bits))
                    },
                })
                .collect(),
        }),
        3 => WireMessage::GlobalPromptBroadcast(GlobalPromptBroadcast {
            task: id as u32,
            round: aux as u32,
            candidates: class_prompts(wbits, nested),
            generalized: if flag == 1 {
                Some(f32s(model_bits))
            } else {
                None
            },
        }),
        4 => WireMessage::MaskedModelUpdate(MaskedModelUpdate {
            client_id: id,
            weight: f32::from_bits(wbits),
            masked: f32s(model_bits),
        }),
        5 => WireMessage::RehearsalMemory(RehearsalMemory {
            client_id: id,
            seed: aux,
            samples: nested
                .iter()
                .enumerate()
                .map(|(i, bits)| WireSample {
                    label: wbits.wrapping_add(i as u32),
                    features: f32s(bits),
                })
                .collect(),
        }),
        6 => WireMessage::Hello(Hello {
            nonce: id,
            codec: (wbits % 3) as u8,
            // Both handshake shapes: a fresh join and a resuming rejoin.
            resume: if flag == 1 {
                Some(Resume {
                    token: aux,
                    cursor: aux.rotate_left(17),
                })
            } else {
                None
            },
        }),
        7 => WireMessage::Welcome(Welcome {
            peer_id: id,
            resume_token: aux,
            // Arbitrary ASCII spec derived from the bit pool.
            spec: model_bits
                .iter()
                .map(|b| char::from((b % 26) as u8 + b'a'))
                .collect(),
            compression: if flag == 1 {
                Some(CompressionSpec {
                    delta: aux % 2 == 0,
                    quant: match wbits % 3 {
                        0 => QuantMode::None,
                        1 => QuantMode::F16,
                        _ => QuantMode::Int8,
                    },
                    topk_fraction: [0.25f32, 0.5, 0.75, 1.0][(aux % 4) as usize],
                })
            } else {
                None
            },
        }),
        8 => WireMessage::RoundStart(RoundStart {
            task: id as u32,
            round: aux as u32,
            model: raw_bytes(model_bits),
            extra: if flag == 1 {
                Some(raw_bytes(&[wbits]))
            } else {
                None
            },
            sessions: nested
                .iter()
                .enumerate()
                .map(|(i, bits)| SessionAssignment {
                    client_id: id.wrapping_add(i as u64),
                    group: (bits.len() % 3) as u8,
                    seed: aux.wrapping_mul(i as u64 + 1),
                })
                .collect(),
        }),
        9 => WireMessage::SessionResult(SessionResult {
            task: id as u32,
            round: aux as u32,
            client_id: id,
            wall_ns: aux,
            update: raw_bytes(model_bits),
            merge: if flag == 1 {
                Some(raw_bytes(&[wbits, wbits]))
            } else {
                None
            },
        }),
        10 => WireMessage::RoundSync(RoundSync {
            task: id as u32,
            round: aux as u32,
            global: f32s(model_bits),
            merges: nested
                .iter()
                .enumerate()
                .map(|(i, bits)| (id.wrapping_add(i as u64), raw_bytes(bits)))
                .collect(),
        }),
        11 => WireMessage::TaskBegin(TaskBegin {
            task: id as u32,
            global: f32s(model_bits),
        }),
        12 => WireMessage::TaskEnd(TaskEnd {
            task: id as u32,
            global: f32s(model_bits),
        }),
        13 => {
            // Built through the real encoder so the index/values invariants
            // hold; NaNs, infinities, and subnormals stay in the pool.
            let flat = f32s(model_bits);
            let base = vec![0.0f32; flat.len()];
            let spec = CompressionSpec {
                delta: flag == 1,
                quant: match aux % 3 {
                    0 => QuantMode::None,
                    1 => QuantMode::F16,
                    _ => QuantMode::Int8,
                },
                topk_fraction: [0.25f32, 0.5, 0.75, 1.0][(wbits % 4) as usize],
            };
            WireMessage::CompressedModelUpdate(CompressedModelUpdate::compress(
                &spec,
                None,
                id,
                f32::from_bits(wbits),
                &flat,
                &base,
                id as u32,
                aux as u32,
            ))
        }
        _ => WireMessage::RunEnd(RunEnd {
            reason: (wbits % 3) as u8,
        }),
    }
}

/// An opaque byte string (stand-in for a nested frame) from a bit pool.
fn raw_bytes(bits: &[u32]) -> Vec<u8> {
    bits.iter().flat_map(|b| b.to_le_bytes()).collect()
}

/// Bit-exact equality: `PartialEq` on f32 treats NaN != NaN, so compare
/// through the encoded bytes instead.
fn assert_same(a: &WireMessage, b: &WireMessage) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.kind(), b.kind());
    prop_assert_eq!(a.encode(), b.encode());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn every_kind_round_trips_across_random_shapes(
        kind in 0usize..15,
        id in 0u64..=u64::MAX,
        aux in 0u64..=u64::MAX,
        wbits in 0u32..=u32::MAX,
        model_bits in prop::collection::vec(0u32..=u32::MAX, 0..24),
        nested in prop::collection::vec(prop::collection::vec(0u32..=u32::MAX, 0..16), 0..5),
        flag in 0usize..2,
    ) {
        let msg = build_message(kind, id, aux, wbits, &model_bits, &nested, flag);
        let frame = msg.encode();
        prop_assert_eq!(frame.len(), msg.encoded_len(), "encoded_len disagrees with encode()");
        let back = WireMessage::decode(&frame).expect("round trip decode");
        assert_same(&back, &msg)?;
    }

    #[test]
    fn one_element_model_round_trips(xbits in 0u32..=u32::MAX, kind in 0usize..3) {
        // The degenerate shapes the codec contract calls out explicitly:
        // empty prompt sets and 1-element models.
        let x = f32::from_bits(xbits);
        let msg = match kind {
            0 => WireMessage::ModelBroadcast(ModelBroadcast { task: 0, round: 0, model: vec![x] }),
            1 => WireMessage::ClientModelUpdate(ClientModelUpdate {
                client_id: 0,
                weight: 1.0,
                model: vec![x],
            }),
            _ => WireMessage::PromptUpload(PromptUpload { client_id: 0, groups: Vec::new() }),
        };
        let back = WireMessage::decode(&msg.encode()).expect("decode");
        assert_same(&back, &msg)?;
    }

    #[test]
    fn corrupting_any_single_byte_yields_a_wire_error(
        kind in 0usize..15,
        id in 0u64..=u64::MAX,
        aux in 0u64..=u64::MAX,
        wbits in 0u32..=u32::MAX,
        model_bits in prop::collection::vec(0u32..=u32::MAX, 0..24),
        nested in prop::collection::vec(prop::collection::vec(0u32..=u32::MAX, 0..16), 0..5),
        flag in 0usize..2,
        pos_seed in 0usize..=usize::MAX,
        flip in 1u8..=255,
    ) {
        let msg = build_message(kind, id, aux, wbits, &model_bits, &nested, flag);
        let clean = msg.encode();
        let pos = pos_seed % clean.len();
        let mut corrupt = clean.clone();
        corrupt[pos] ^= flip;
        match WireMessage::decode(&corrupt) {
            Err(_) => {} // typed error: exactly what the contract demands
            Ok(back) => {
                // A successful decode of a corrupted frame would only be
                // acceptable if it reproduced the original bytes — which a
                // one-byte flip cannot, so this is a contract violation.
                prop_assert_eq!(back.encode(), clean, "corrupt frame decoded silently");
                prop_assert!(false, "corrupt frame decoded at byte {}", pos);
            }
        }
    }

    #[test]
    fn control_frames_with_real_nested_payloads_round_trip(
        inner_kind in 0usize..7,
        outer_sel in 0usize..3,
        id in 0u64..=u64::MAX,
        aux in 0u64..=u64::MAX,
        wbits in 0u32..=u32::MAX,
        model_bits in prop::collection::vec(0u32..=u32::MAX, 0..16),
        nested in prop::collection::vec(prop::collection::vec(0u32..=u32::MAX, 0..8), 0..3),
        flag in 0usize..2,
    ) {
        // The control protocol's defining structure: payload exchanges ride
        // inside RoundStart/SessionResult/RoundSync as *sealed frames*.
        // The outer codec must hand those bytes back verbatim, and the
        // inner codec must accept them — for every payload kind, not just
        // the raw byte blobs the generic round-trip sweep uses.
        // Selector 6 maps to the compressed payload kind (build_message 13);
        // 0–5 are the classic payload kinds.
        let inner_kind = if inner_kind == 6 { 13 } else { inner_kind };
        let inner = build_message(inner_kind, id, aux, wbits, &model_bits, &nested, flag);
        let inner_frame = inner.encode();
        let outer = match outer_sel {
            0 => WireMessage::RoundStart(RoundStart {
                task: id as u32,
                round: aux as u32,
                model: inner_frame.clone(),
                extra: if flag == 1 { Some(inner_frame.clone()) } else { None },
                sessions: Vec::new(),
            }),
            1 => WireMessage::SessionResult(SessionResult {
                task: id as u32,
                round: aux as u32,
                client_id: id,
                wall_ns: aux,
                update: inner_frame.clone(),
                merge: if flag == 1 { Some(inner_frame.clone()) } else { None },
            }),
            _ => WireMessage::RoundSync(RoundSync {
                task: id as u32,
                round: aux as u32,
                global: f32s(&model_bits),
                merges: vec![(id, inner_frame.clone())],
            }),
        };
        let encoded = outer.encode();
        prop_assert_eq!(encoded.len(), outer.encoded_len());
        let back = WireMessage::decode(&encoded).expect("outer decode");
        let nested_back = match &back {
            WireMessage::RoundStart(m) => m.model.clone(),
            WireMessage::SessionResult(m) => m.update.clone(),
            WireMessage::RoundSync(m) => m.merges[0].1.clone(),
            _ => unreachable!("outer selector"),
        };
        prop_assert_eq!(&nested_back, &inner_frame, "nested frame bytes altered");
        assert_same(&WireMessage::decode(&nested_back).expect("nested decode"), &inner)?;
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        // Any outcome is fine except a panic; random bytes essentially
        // never form a valid CRC-sealed frame.
        let _ = WireMessage::decode(&bytes);
    }

    #[test]
    fn truncating_a_frame_is_always_detected(
        kind in 0usize..15,
        id in 0u64..=u64::MAX,
        aux in 0u64..=u64::MAX,
        wbits in 0u32..=u32::MAX,
        model_bits in prop::collection::vec(0u32..=u32::MAX, 0..24),
        nested in prop::collection::vec(prop::collection::vec(0u32..=u32::MAX, 0..16), 0..5),
        flag in 0usize..2,
        cut_seed in 0usize..=usize::MAX,
    ) {
        let msg = build_message(kind, id, aux, wbits, &model_bits, &nested, flag);
        let frame = msg.encode();
        let keep = cut_seed % frame.len(); // strictly shorter than the frame
        let err = WireMessage::decode(&frame[..keep]).unwrap_err();
        prop_assert!(
            matches!(err, WireError::Truncated { .. } | WireError::LengthMismatch { .. }),
            "unexpected error for truncation to {}: {}", keep, err
        );
    }

    #[test]
    fn header_magic_and_length_match_constants(
        kind in 0usize..15,
        id in 0u64..=u64::MAX,
        aux in 0u64..=u64::MAX,
        wbits in 0u32..=u32::MAX,
        model_bits in prop::collection::vec(0u32..=u32::MAX, 0..24),
        nested in prop::collection::vec(prop::collection::vec(0u32..=u32::MAX, 0..16), 0..5),
        flag in 0usize..2,
    ) {
        let msg = build_message(kind, id, aux, wbits, &model_bits, &nested, flag);
        let frame = msg.encode();
        prop_assert!(frame.len() >= HEADER_LEN);
        prop_assert!(frame[..4] == MAGIC, "bad magic prefix");
    }

    #[test]
    fn f16_reconstruction_error_contract_holds(xbits in 0u32..=u32::MAX) {
        // The documented bound from `compress`:
        //   |x − dec(enc(x))| ≤ max(|x|·2⁻¹¹, 2⁻²⁵)  for finite |x| ≤ 65504,
        // saturation to ±65504 beyond that, NaN stays NaN.
        let x = f32::from_bits(xbits);
        let back = f16_to_f32(f16_from_f32(x));
        if x.is_nan() {
            prop_assert!(back.is_nan());
        } else if x.abs() > 65504.0 {
            prop_assert_eq!(back, 65504.0f32.copysign(x), "saturation for {}", x);
        } else {
            let err = (f64::from(x) - f64::from(back)).abs();
            let bound = (f64::from(x.abs()) * 2f64.powi(-11)).max(2f64.powi(-25));
            prop_assert!(err <= bound, "x={:e} back={:e} err={:e} bound={:e}", x, back, err, bound);
        }
    }

    #[test]
    fn f16_codec_is_deterministic_and_idempotent(xbits in 0u32..=u32::MAX) {
        let x = f32::from_bits(xbits);
        let h = f16_from_f32(x);
        prop_assert_eq!(h, f16_from_f32(x), "same input, same bits");
        // Decoded values are fixed points: re-encoding loses nothing more.
        prop_assert_eq!(f16_from_f32(f16_to_f32(h)), h, "grid fixed point");
    }

    #[test]
    fn int8_reconstruction_error_contract_holds(
        ints in prop::collection::vec(-1_000_000i32..=1_000_000, 1..64),
        scale_exp in -8i32..=8,
    ) {
        // Finite tensors across 17 orders of magnitude of spread; the
        // documented bound is |x − dec| ≤ scale/2 + (|x| + scale)·2⁻²⁰.
        let mag = 10f64.powi(scale_exp) as f32;
        let values: Vec<f32> = ints.iter().map(|&i| i as f32 * 1e-4 * mag).collect();
        let (zp, scale, codes) = int8_quantize(&values);
        prop_assert_eq!(codes.len(), values.len());
        for (&x, &c) in values.iter().zip(&codes) {
            let back = int8_dequantize_one(zp, scale, c);
            let err = (f64::from(x) - f64::from(back)).abs();
            let bound = f64::from(scale) / 2.0
                + (f64::from(x.abs()) + f64::from(scale)) * 2f64.powi(-20);
            prop_assert!(err <= bound, "x={:e} back={:e} err={:e} bound={:e}", x, back, err, bound);
        }
    }

    #[test]
    fn int8_quantization_is_deterministic(
        ints in prop::collection::vec(-1_000_000i32..=1_000_000, 1..32),
    ) {
        let values: Vec<f32> = ints.iter().map(|&i| i as f32 * 1e-4).collect();
        prop_assert_eq!(int8_quantize(&values), int8_quantize(&values));
    }

    #[test]
    fn identity_spec_compression_is_bit_exact(
        model_bits in prop::collection::vec(0u32..=u32::MAX, 0..32),
        base_bits in prop::collection::vec(0u32..=u32::MAX, 0..32),
        id in 0u64..=u64::MAX,
    ) {
        // The lossless contract behind the determinism-suite guarantee:
        // {delta: false, quant: none, topk: 1.0} must reconstruct every bit
        // pattern exactly, including NaNs and infinities, after a real
        // encode → decode round trip.
        let flat = f32s(&model_bits);
        let mut base = f32s(&base_bits);
        base.resize(flat.len(), 0.0);
        let msg = CompressedModelUpdate::compress(
            &CompressionSpec::identity(), None, id, 1.0, &flat, &base, 0, 0,
        );
        let decoded = WireMessage::decode(&WireMessage::CompressedModelUpdate(msg).encode())
            .expect("round trip");
        let WireMessage::CompressedModelUpdate(decoded) = decoded else {
            return Err(TestCaseError::fail("wrong kind back"));
        };
        let back = decoded.reconstruct(&base).expect("reconstruct");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&back), bits(&flat));
    }

    #[test]
    fn delta_topk_reconstruction_touches_only_selected_coords(
        ints in prop::collection::vec(-1_000_000i32..=1_000_000, 1..48),
        base_ints in prop::collection::vec(-1_000_000i32..=1_000_000, 1..48),
        frac_sel in 0usize..3,
    ) {
        let flat: Vec<f32> = ints.iter().map(|&i| i as f32 * 1e-4).collect();
        let mut base: Vec<f32> = base_ints.iter().map(|&i| i as f32 * 1e-4).collect();
        base.resize(flat.len(), 0.0);
        let spec = CompressionSpec {
            delta: true,
            quant: QuantMode::None,
            topk_fraction: [0.25f32, 0.5, 0.75][frac_sel],
        };
        let msg = CompressedModelUpdate::compress(&spec, None, 1, 1.0, &flat, &base, 0, 0);
        let selected = msg.index.positions(flat.len());
        let back = msg.reconstruct(&base).expect("reconstruct");
        for (i, (&b, &f)) in base.iter().zip(&flat).enumerate() {
            if selected.binary_search(&i).is_ok() {
                // Unquantized delta: base + (flat − base), one rounding step.
                prop_assert_eq!(back[i], b + (f - b), "selected coord {}", i);
            } else {
                prop_assert_eq!(back[i].to_bits(), b.to_bits(), "dropped coord {}", i);
            }
        }
    }
}

#[cfg(unix)]
mod socket {
    //! Corruption crossing a *real* socket: the transport restores message
    //! boundaries faithfully, and the codec's CRC — not the transport —
    //! rejects the damage with a typed error instead of a crash or a
    //! silently wrong decode. Small case count: each case pays for a
    //! socketpair.

    use super::*;
    use crate::link::Link;
    use crate::net::NetLink;
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn corrupt_frame_over_unix_socket_is_detected(
            kind in 0usize..15,
            id in 0u64..=u64::MAX,
            aux in 0u64..=u64::MAX,
            wbits in 0u32..=u32::MAX,
            model_bits in prop::collection::vec(0u32..=u32::MAX, 0..16),
            nested in prop::collection::vec(prop::collection::vec(0u32..=u32::MAX, 0..8), 0..3),
            flag in 0usize..2,
            pos_seed in 0usize..=usize::MAX,
            flip in 1u8..=255,
        ) {
            let (a, b) = UnixStream::pair().expect("socketpair");
            let tx = NetLink::from_unix(a, 1).expect("tx link");
            let rx = NetLink::from_unix(b, 2).expect("rx link");
            let msg = build_message(kind, id, aux, wbits, &model_bits, &nested, flag);
            let clean = msg.encode();
            let mut corrupt = clean.clone();
            let pos = pos_seed % corrupt.len();
            corrupt[pos] ^= flip;
            tx.send(&corrupt).expect("send over socket");
            let deadline = Instant::now() + Duration::from_secs(5);
            let received = rx.recv_deadline(deadline).expect("frame arrives intact");
            prop_assert_eq!(&received, &corrupt, "transport altered the bytes");
            match WireMessage::decode(&received) {
                Err(_) => {}
                Ok(back) => {
                    prop_assert_eq!(back.encode(), clean, "corrupt frame decoded silently");
                    prop_assert!(false, "corrupt frame decoded at byte {}", pos);
                }
            }
        }
    }
}
