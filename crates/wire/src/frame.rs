//! Frame header, checksum, and the bounds-checked little-endian
//! reader/writer the payload codecs are built on.

use std::fmt;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"RFWL";

/// Current schema version; decoders accept exactly this value. Bumped to 2
/// when the handshake payloads grew session-resumption fields
/// ([`crate::Hello::resume`], [`crate::Welcome::resume_token`]); bumped to 3
/// when the handshake grew compression negotiation ([`crate::Hello::codec`],
/// [`crate::Welcome::compression`]).
pub const SCHEMA_VERSION: u16 = 3;

/// Fixed header size preceding every payload.
pub const HEADER_LEN: usize = 16;

/// Typed decode/transport failure. Decoding never panics: every malformed
/// frame maps to one of these.
///
/// Marked `#[non_exhaustive]`: future transports may add variants without a
/// semver break, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer is shorter than the bytes the frame declares.
    Truncated {
        /// Bytes the frame needs to decode.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found where the magic should be.
        got: [u8; 4],
    },
    /// The frame was encoded under a different schema version.
    VersionMismatch {
        /// Version found in the header.
        got: u16,
        /// Version this decoder understands.
        expected: u16,
    },
    /// The header names a message kind this decoder does not know.
    UnknownKind(u16),
    /// The header's payload length disagrees with the buffer length.
    LengthMismatch {
        /// Payload length declared in the header.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The CRC32 over the header prefix and payload does not match.
    ChecksumMismatch {
        /// Checksum computed over the received bytes.
        computed: u32,
        /// Checksum stored in the header.
        stored: u32,
    },
    /// The payload failed structural validation (overruns, bad tags,
    /// leftover bytes) even though the checksum passed.
    Malformed(&'static str),
    /// The transport can no longer move frames.
    TransportClosed,
    /// An I/O failure on a socket-backed transport (the message is the
    /// stringified OS error).
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            Self::BadMagic { got } => write!(f, "bad magic {got:02x?}, expected {MAGIC:02x?}"),
            Self::VersionMismatch { got, expected } => {
                write!(f, "schema version {got}, expected {expected}")
            }
            Self::UnknownKind(kind) => write!(f, "unknown message kind {kind}"),
            Self::LengthMismatch { declared, actual } => {
                write!(f, "payload length {declared} declared, {actual} present")
            }
            Self::ChecksumMismatch { computed, stored } => {
                write!(
                    f,
                    "checksum mismatch: computed {computed:08x}, stored {stored:08x}"
                )
            }
            Self::Malformed(what) => write!(f, "malformed payload: {what}"),
            Self::TransportClosed => write!(f, "transport closed"),
            Self::Io(msg) => write!(f, "transport i/o error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Wire identifier of each message type (the header's kind field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum MessageKind {
    /// Server → client: global model parameters for the round.
    ModelBroadcast = 1,
    /// Client → server: locally trained parameters plus FedAvg weight.
    ClientModelUpdate = 2,
    /// Client → server: class-wise Local Prompt Groups (RefFiL).
    PromptUpload = 3,
    /// Server → client: clustered prompt representatives + generalized prompt.
    GlobalPromptBroadcast = 4,
    /// Client → server: secure-aggregation masked parameters.
    MaskedModelUpdate = 5,
    /// Client-owned episodic memory in transit (rehearsal oracle).
    RehearsalMemory = 6,
    /// Client → server: first frame on a fresh connection.
    Hello = 7,
    /// Server → client: handshake reply assigning a peer id.
    Welcome = 8,
    /// Server → client: opens a round with nested broadcast frames and the
    /// peer's session assignments.
    RoundStart = 9,
    /// Client → server: one trained session's nested update/merge frames.
    SessionResult = 10,
    /// Server → client: closes a round with the post-aggregate global model
    /// and the ordered merge frames.
    RoundSync = 11,
    /// Server → client: a task is starting (replicas run task setup).
    TaskBegin = 12,
    /// Server → client: a task finished (replicas run task teardown).
    TaskEnd = 13,
    /// Either direction: the run (or this peer's participation) is over.
    RunEnd = 14,
    /// Client → server: delta/top-k/quantized parameters, reconstructed by
    /// the server against its own broadcast history.
    CompressedModelUpdate = 15,
}

impl MessageKind {
    /// Every kind, in wire-id order (for exhaustive tests).
    pub const ALL: [MessageKind; 15] = [
        MessageKind::ModelBroadcast,
        MessageKind::ClientModelUpdate,
        MessageKind::PromptUpload,
        MessageKind::GlobalPromptBroadcast,
        MessageKind::MaskedModelUpdate,
        MessageKind::RehearsalMemory,
        MessageKind::Hello,
        MessageKind::Welcome,
        MessageKind::RoundStart,
        MessageKind::SessionResult,
        MessageKind::RoundSync,
        MessageKind::TaskBegin,
        MessageKind::TaskEnd,
        MessageKind::RunEnd,
        MessageKind::CompressedModelUpdate,
    ];

    /// Parses the header's kind field.
    pub fn from_wire(raw: u16) -> Result<Self, WireError> {
        match raw {
            1 => Ok(Self::ModelBroadcast),
            2 => Ok(Self::ClientModelUpdate),
            3 => Ok(Self::PromptUpload),
            4 => Ok(Self::GlobalPromptBroadcast),
            5 => Ok(Self::MaskedModelUpdate),
            6 => Ok(Self::RehearsalMemory),
            7 => Ok(Self::Hello),
            8 => Ok(Self::Welcome),
            9 => Ok(Self::RoundStart),
            10 => Ok(Self::SessionResult),
            11 => Ok(Self::RoundSync),
            12 => Ok(Self::TaskBegin),
            13 => Ok(Self::TaskEnd),
            14 => Ok(Self::RunEnd),
            15 => Ok(Self::CompressedModelUpdate),
            other => Err(WireError::UnknownKind(other)),
        }
    }

    /// Stable snake_case name, used as the telemetry counter suffix
    /// (`wire.<name>_bytes`).
    pub fn name(self) -> &'static str {
        match self {
            Self::ModelBroadcast => "model_broadcast",
            Self::ClientModelUpdate => "client_model_update",
            Self::PromptUpload => "prompt_upload",
            Self::GlobalPromptBroadcast => "global_prompt_broadcast",
            Self::MaskedModelUpdate => "masked_model_update",
            Self::RehearsalMemory => "rehearsal_memory",
            Self::Hello => "hello",
            Self::Welcome => "welcome",
            Self::RoundStart => "round_start",
            Self::SessionResult => "session_result",
            Self::RoundSync => "round_sync",
            Self::TaskBegin => "task_begin",
            Self::TaskEnd => "task_end",
            Self::RunEnd => "run_end",
            Self::CompressedModelUpdate => "compressed_model_update",
        }
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let mut c = state;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

/// CRC32 (IEEE 802.3 polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xffff_ffff, data) ^ 0xffff_ffff
}

/// CRC32 of the concatenation `head ++ tail` without materializing it —
/// the frame checksum covers the header prefix plus the payload.
pub(crate) fn crc32_two(head: &[u8], tail: &[u8]) -> u32 {
    crc32_update(crc32_update(0xffff_ffff, head), tail) ^ 0xffff_ffff
}

/// Seals `buf` (header with placeholder length/checksum plus payload) in
/// place: patches the payload length and the CRC32 into the header.
pub(crate) fn seal_frame(buf: &mut [u8]) {
    debug_assert!(buf.len() >= HEADER_LEN);
    let payload_len = u32::try_from(buf.len() - HEADER_LEN).expect("payload exceeds u32 framing");
    buf[8..12].copy_from_slice(&payload_len.to_le_bytes());
    let crc = crc32_two(&buf[..12], &buf[HEADER_LEN..]);
    buf[12..16].copy_from_slice(&crc.to_le_bytes());
}

/// Validates a frame's header and checksum, returning the kind and payload.
pub(crate) fn open_frame(buf: &[u8]) -> Result<(MessageKind, &[u8]), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: buf.len(),
        });
    }
    let magic: [u8; 4] = buf[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().expect("2-byte slice"));
    if version != SCHEMA_VERSION {
        return Err(WireError::VersionMismatch {
            got: version,
            expected: SCHEMA_VERSION,
        });
    }
    let kind = MessageKind::from_wire(u16::from_le_bytes(buf[6..8].try_into().expect("2 bytes")))?;
    let declared = u32::from_le_bytes(buf[8..12].try_into().expect("4-byte slice")) as usize;
    let actual = buf.len() - HEADER_LEN;
    if declared != actual {
        return Err(WireError::LengthMismatch { declared, actual });
    }
    let stored = u32::from_le_bytes(buf[12..16].try_into().expect("4-byte slice"));
    let computed = crc32_two(&buf[..12], &buf[HEADER_LEN..]);
    if computed != stored {
        return Err(WireError::ChecksumMismatch { computed, stored });
    }
    Ok((kind, &buf[HEADER_LEN..]))
}

/// Append-only little-endian payload writer.
pub(crate) struct Writer<'a>(pub &'a mut Vec<u8>);

impl Writer<'_> {
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed `f32` vector: `u32` count followed by raw LE floats.
    pub fn f32s(&mut self, v: &[f32]) {
        self.u32(u32::try_from(v.len()).expect("vector exceeds u32 framing"));
        for &x in v {
            self.f32(x);
        }
    }

    /// Length-prefixed `u16` vector: `u32` count followed by raw LE words
    /// (used for f16-quantized payloads).
    pub fn u16s(&mut self, v: &[u16]) {
        self.u32(u32::try_from(v.len()).expect("vector exceeds u32 framing"));
        for &x in v {
            self.u16(x);
        }
    }

    /// Length-prefixed `u32` vector: `u32` count followed by raw LE words
    /// (used for sparse index lists).
    pub fn u32s(&mut self, v: &[u32]) {
        self.u32(u32::try_from(v.len()).expect("vector exceeds u32 framing"));
        for &x in v {
            self.u32(x);
        }
    }

    /// Length-prefixed byte string: `u32` length followed by the raw bytes
    /// (used for nested frames and UTF-8 strings).
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("byte string exceeds u32 framing"));
        self.0.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Encoded size of a length-prefixed byte string.
pub(crate) fn bytes_len(v: &[u8]) -> usize {
    4 + v.len()
}

/// Bounds-checked little-endian payload reader. Every overrun is a typed
/// [`WireError::Malformed`]; length prefixes are validated against the
/// remaining bytes before any allocation.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(WireError::Malformed(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4-byte slice"),
        ))
    }

    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8-byte slice"),
        ))
    }

    pub fn f32(&mut self, what: &'static str) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4-byte slice"),
        ))
    }

    /// Length-prefixed `f32` vector; the count is validated against the
    /// remaining bytes before allocating.
    pub fn f32s(&mut self, what: &'static str) -> Result<Vec<f32>, WireError> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n.checked_mul(4).ok_or(WireError::Malformed(what))?, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Length-prefixed `u16` vector; the count is validated against the
    /// remaining bytes before allocating.
    pub fn u16s(&mut self, what: &'static str) -> Result<Vec<u16>, WireError> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n.checked_mul(2).ok_or(WireError::Malformed(what))?, what)?;
        Ok(bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().expect("2-byte chunk")))
            .collect())
    }

    /// Length-prefixed `u32` vector; the count is validated against the
    /// remaining bytes before allocating.
    pub fn u32s(&mut self, what: &'static str) -> Result<Vec<u32>, WireError> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n.checked_mul(4).ok_or(WireError::Malformed(what))?, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Length-prefixed byte string; the length is validated against the
    /// remaining bytes before allocating.
    pub fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let n = self.u32(what)? as usize;
        Ok(self.take(n, what)?.to_vec())
    }

    /// Length-prefixed UTF-8 string; invalid UTF-8 is a typed error.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        String::from_utf8(self.bytes(what)?).map_err(|_| WireError::Malformed(what))
    }

    /// A `u32` element count, validated against a minimum per-element byte
    /// cost so a corrupt count cannot trigger a huge allocation.
    pub fn count(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem_bytes) > self.buf.len() - self.pos {
            return Err(WireError::Malformed(what));
        }
        Ok(n)
    }

    /// Fails unless the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing payload bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_two_concatenates() {
        assert_eq!(crc32_two(b"1234", b"56789"), crc32(b"123456789"));
        assert_eq!(crc32_two(b"", b"123456789"), crc32(b"123456789"));
    }

    #[test]
    fn kind_round_trips_through_wire_id() {
        for kind in MessageKind::ALL {
            assert_eq!(MessageKind::from_wire(kind as u16).unwrap(), kind);
        }
        assert_eq!(MessageKind::from_wire(0), Err(WireError::UnknownKind(0)));
        assert_eq!(MessageKind::from_wire(99), Err(WireError::UnknownKind(99)));
    }

    #[test]
    fn open_frame_rejects_short_buffers() {
        assert_eq!(
            open_frame(&[0u8; 3]),
            Err(WireError::Truncated { needed: 16, got: 3 })
        );
    }

    #[test]
    fn reader_rejects_overrun_and_leftovers() {
        let mut r = Reader::new(&[1, 0, 0, 0]);
        assert!(r.u64("needs eight").is_err());
        let mut r = Reader::new(&[1, 0, 0, 0, 9]);
        assert_eq!(r.u32("ok").unwrap(), 1);
        assert_eq!(
            r.finish(),
            Err(WireError::Malformed("trailing payload bytes"))
        );
    }

    #[test]
    fn reader_vec_guard_blocks_absurd_counts() {
        // Declares 2^31 floats with only 4 bytes of payload behind it.
        let mut buf = Vec::new();
        Writer(&mut buf).u32(0x8000_0000);
        buf.extend_from_slice(&[0; 4]);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.f32s("floats"), Err(WireError::Malformed(_))));
    }
}
