//! Socket transports: TCP and Unix-domain implementations of
//! [`Link`]/[`Listener`].
//!
//! The stream protocol is deliberately thin: each sealed codec frame is
//! written as a `u32` little-endian length prefix followed by the frame
//! bytes. All integrity checking stays in the CRC-sealed codec — the
//! transport only restores message boundaries. Deadline-bounded receives
//! are built on OS read timeouts (`set_read_timeout`), so a waiting server
//! blocks in the kernel instead of spinning; partially read frames are
//! preserved across timeouts and resumed on the next call.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::frame::WireError;
use crate::link::{ConnectError, Link, Listener, PeerId, RecvError, SERVER_PEER};

/// Upper bound on a length-prefixed frame. A prefix above this is treated
/// as stream corruption ([`RecvError::Frame`]) rather than an allocation.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Minimum OS read timeout. `set_read_timeout(Some(ZERO))` is an error on
/// every platform, so remaining-time slices are clamped up to this.
const MIN_READ_TIMEOUT: Duration = Duration::from_millis(1);

/// How long [`connect`] sleeps between attempts while the server side is
/// not up yet, and how long [`NetListener::accept_deadline`] sleeps
/// between non-blocking accept polls.
const RETRY_INTERVAL: Duration = Duration::from_millis(20);

/// A parsed transport address: `host:port` for TCP, `unix:/path` for a
/// Unix-domain socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP endpoint, e.g. `127.0.0.1:7700`.
    Tcp(String),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an address string. `unix:<path>` selects a Unix-domain
    /// socket; anything else must look like `host:port`. Structurally
    /// valid addresses with an empty host or path get their own
    /// [`ConnectError::EmptyHost`] / [`ConnectError::EmptyPath`] variants
    /// so a CLI can say exactly what is missing.
    pub fn parse(addr: &str) -> Result<Self, ConnectError> {
        if let Some(path) = addr.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ConnectError::EmptyPath(addr.to_string()));
            }
            #[cfg(unix)]
            {
                return Ok(Self::Unix(PathBuf::from(path)));
            }
            #[cfg(not(unix))]
            {
                return Err(ConnectError::BadAddress(format!(
                    "{addr}: unix sockets unsupported on this platform"
                )));
            }
        }
        let tcp = addr.strip_prefix("tcp:").unwrap_or(addr);
        // `host:port` with a numeric port; IPv6 needs the bracketed form.
        match tcp.rsplit_once(':') {
            Some((host, port)) if port.parse::<u16>().is_ok() => {
                if host.is_empty() {
                    Err(ConnectError::EmptyHost(addr.to_string()))
                } else {
                    Ok(Self::Tcp(tcp.to_string()))
                }
            }
            _ => Err(ConnectError::BadAddress(addr.to_string())),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Self::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Self::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Self::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        let t = Some(timeout.max(MIN_READ_TIMEOUT));
        match self {
            Self::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Self::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_nonblocking(on),
            #[cfg(unix)]
            Self::Unix(s) => s.set_nonblocking(on),
        }
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        match self {
            Self::Tcp(s) => s.as_raw_fd(),
            Self::Unix(s) => s.as_raw_fd(),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Self::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Self::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Self::Unix(s) => s.flush(),
        }
    }
}

/// Receive-side state: a partially read length prefix or frame body
/// survives a deadline timeout and resumes on the next call.
struct ReadHalf {
    stream: Stream,
    len_buf: [u8; 4],
    len_got: usize,
    body: Vec<u8>,
    body_got: usize,
}

/// Send-side state: bytes accepted by [`Link::enqueue_frame`] but not yet
/// written sit in `pending` until a flush drains them — the reactor's
/// per-link backpressure buffer.
struct WriteHalf {
    stream: Stream,
    pending: VecDeque<u8>,
}

/// One socket-backed [`Link`] (TCP or Unix). Reads and writes are guarded
/// by separate locks over cloned handles, so a collector thread can block
/// in `recv_deadline` while the driver sends. In readiness mode
/// ([`Link::set_nonblocking`]) the `try_*` methods never block and the
/// reactor watches [`Link::poll_fd`] through a [`crate::PollSet`].
pub struct NetLink {
    peer: PeerId,
    reader: Mutex<ReadHalf>,
    writer: Mutex<WriteHalf>,
    /// Whether the underlying file description is in non-blocking mode
    /// (shared by both cloned halves). `try_recv_frame` uses it to decide
    /// if a bounding read timeout is still needed.
    nonblocking: AtomicBool,
    #[cfg(unix)]
    raw_fd: i32,
}

fn closed_kind(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected
    )
}

impl NetLink {
    fn from_stream(stream: Stream, peer: PeerId) -> Result<Self, ConnectError> {
        let writer = stream
            .try_clone()
            .map_err(|e| ConnectError::Io(e.to_string()))?;
        #[cfg(unix)]
        let raw_fd = stream.raw_fd();
        Ok(Self {
            peer,
            reader: Mutex::new(ReadHalf {
                stream,
                len_buf: [0; 4],
                len_got: 0,
                body: Vec::new(),
                body_got: 0,
            }),
            writer: Mutex::new(WriteHalf {
                stream: writer,
                pending: VecDeque::new(),
            }),
            nonblocking: AtomicBool::new(false),
            #[cfg(unix)]
            raw_fd,
        })
    }

    #[cfg(unix)]
    #[cfg(test)]
    pub(crate) fn from_unix(stream: UnixStream, peer: PeerId) -> Result<Self, ConnectError> {
        Self::from_stream(Stream::Unix(stream), peer)
    }
}

/// Reads as much of `buf[*got..]` as the current read timeout allows.
/// Returns `Ok(true)` when `buf` is complete.
fn fill(stream: &mut Stream, buf: &mut [u8], got: &mut usize) -> Result<bool, RecvError> {
    while *got < buf.len() {
        match stream.read(&mut buf[*got..]) {
            Ok(0) => return Err(RecvError::Disconnected),
            Ok(n) => *got += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(false);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if closed_kind(e.kind()) => return Err(RecvError::Disconnected),
            Err(e) => return Err(RecvError::Io(e.to_string())),
        }
    }
    Ok(true)
}

/// One non-blocking pass of the frame reassembly machine. `Ok(None)` means
/// the transport had no more bytes to give right now; partial state stays
/// in `r` and resumes on the next call (from either receive API).
fn try_read_frame(r: &mut ReadHalf) -> Result<Option<Vec<u8>>, RecvError> {
    if r.len_got < 4 {
        let mut len_buf = r.len_buf;
        let done = fill(&mut r.stream, &mut len_buf, &mut r.len_got)?;
        r.len_buf = len_buf;
        if !done {
            return Ok(None);
        }
        let len = u32::from_le_bytes(r.len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return Err(RecvError::Frame(WireError::Malformed(
                "length prefix exceeds frame cap",
            )));
        }
        r.body = vec![0; len];
        r.body_got = 0;
    }
    if !fill(&mut r.stream, &mut r.body, &mut r.body_got)? {
        return Ok(None);
    }
    r.len_got = 0;
    Ok(Some(std::mem::take(&mut r.body)))
}

fn send_io(e: std::io::Error) -> WireError {
    if closed_kind(e.kind()) {
        WireError::TransportClosed
    } else {
        WireError::Io(e.to_string())
    }
}

/// Writes as much of `w.pending` as the stream accepts right now (all of
/// it on a blocking description). Returns the bytes still pending.
fn drain_pending(w: &mut WriteHalf) -> Result<usize, WireError> {
    loop {
        let n = {
            let (head, tail) = w.pending.as_slices();
            let chunk: &[u8] = if head.is_empty() { tail } else { head };
            if chunk.is_empty() {
                break;
            }
            match w.stream.write(chunk) {
                Ok(0) => return Err(WireError::TransportClosed),
                Ok(n) => n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(send_io(e)),
            }
        };
        w.pending.drain(..n);
    }
    if w.pending.is_empty() {
        match w.stream.flush() {
            Ok(()) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(send_io(e)),
        }
    }
    Ok(w.pending.len())
}

impl Link for NetLink {
    fn peer_id(&self) -> PeerId {
        self.peer
    }

    fn send(&self, frame: &[u8]) -> Result<(), WireError> {
        let len = u32::try_from(frame.len()).map_err(|_| WireError::Malformed("frame length"))?;
        let mut w = self.writer.lock().expect("net link writer poisoned");
        w.pending.extend(len.to_le_bytes());
        w.pending.extend(frame.iter().copied());
        // Blocking contract: nothing (including any backlog enqueued in
        // readiness mode) stays buffered. On a non-blocking description,
        // WouldBlock is waited out in short sleeps.
        loop {
            if drain_pending(&mut w)? == 0 {
                return Ok(());
            }
            std::thread::sleep(MIN_READ_TIMEOUT);
        }
    }

    fn recv_deadline(&self, deadline: Instant) -> Result<Vec<u8>, RecvError> {
        let mut r = self.reader.lock().expect("net link reader poisoned");
        let r = &mut *r;
        if self.nonblocking.load(Ordering::Relaxed) {
            // No OS read timeout to lean on in readiness mode: poll the
            // reassembly machine in short sleeps instead.
            loop {
                if let Some(frame) = try_read_frame(r)? {
                    return Ok(frame);
                }
                if Instant::now() >= deadline {
                    return Err(RecvError::DeadlineExceeded);
                }
                std::thread::sleep(MIN_READ_TIMEOUT);
            }
        }
        loop {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()).filter(|d| {
                // A sub-millisecond remainder would be clamped *up* past
                // the deadline; treat it as already expired.
                *d >= MIN_READ_TIMEOUT
            }) else {
                return Err(RecvError::DeadlineExceeded);
            };
            r.stream
                .set_read_timeout(remaining)
                .map_err(|e| RecvError::Io(e.to_string()))?;
            if let Some(frame) = try_read_frame(r)? {
                return Ok(frame);
            }
        }
    }

    fn set_nonblocking(&self, on: bool) -> Result<(), WireError> {
        let r = self.reader.lock().expect("net link reader poisoned");
        // O_NONBLOCK lives on the shared file description, so one call
        // covers both cloned halves.
        r.stream
            .set_nonblocking(on)
            .map_err(|e| WireError::Io(e.to_string()))?;
        self.nonblocking.store(on, Ordering::Relaxed);
        Ok(())
    }

    fn try_recv_frame(&self) -> Result<Option<Vec<u8>>, RecvError> {
        let mut r = self.reader.lock().expect("net link reader poisoned");
        if !self.nonblocking.load(Ordering::Relaxed) {
            // Bound the peek on a blocking description by the minimum OS
            // read timeout.
            r.stream
                .set_read_timeout(MIN_READ_TIMEOUT)
                .map_err(|e| RecvError::Io(e.to_string()))?;
        }
        try_read_frame(&mut r)
    }

    fn enqueue_frame(&self, frame: &[u8]) -> Result<usize, WireError> {
        let len = u32::try_from(frame.len()).map_err(|_| WireError::Malformed("frame length"))?;
        let mut w = self.writer.lock().expect("net link writer poisoned");
        w.pending.extend(len.to_le_bytes());
        w.pending.extend(frame.iter().copied());
        drain_pending(&mut w)
    }

    fn try_flush(&self) -> Result<usize, WireError> {
        let mut w = self.writer.lock().expect("net link writer poisoned");
        drain_pending(&mut w)
    }

    fn pending_tx(&self) -> usize {
        self.writer
            .lock()
            .expect("net link writer poisoned")
            .pending
            .len()
    }

    fn poll_fd(&self) -> Option<i32> {
        #[cfg(unix)]
        {
            Some(self.raw_fd)
        }
        #[cfg(not(unix))]
        {
            None
        }
    }

    fn close(&self) {
        self.writer
            .lock()
            .expect("net link writer poisoned")
            .stream
            .shutdown();
    }
}

enum Bound {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

/// A socket [`Listener`] bound to an [`Endpoint`]. Accepted links get
/// sequential [`PeerId`]s starting at 1 (0 names the server itself).
pub struct NetListener {
    inner: Bound,
    next_peer: AtomicU64,
}

impl NetListener {
    /// Binds the endpoint. A TCP port of 0 picks a free port (see
    /// [`NetListener::local_endpoint`]); a stale Unix socket file left by
    /// a dead server is removed before binding.
    pub fn bind(endpoint: &Endpoint) -> Result<Self, ConnectError> {
        let inner = match endpoint {
            Endpoint::Tcp(addr) => {
                let l =
                    TcpListener::bind(addr).map_err(|e| ConnectError::Refused(e.to_string()))?;
                l.set_nonblocking(true)
                    .map_err(|e| ConnectError::Io(e.to_string()))?;
                Bound::Tcp(l)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                if path.exists() {
                    let _ = std::fs::remove_file(path);
                }
                let l =
                    UnixListener::bind(path).map_err(|e| ConnectError::Refused(e.to_string()))?;
                l.set_nonblocking(true)
                    .map_err(|e| ConnectError::Io(e.to_string()))?;
                Bound::Unix(l, path.clone())
            }
        };
        Ok(Self {
            inner,
            next_peer: AtomicU64::new(1),
        })
    }

    /// The actually bound endpoint (resolves a requested TCP port of 0).
    pub fn local_endpoint(&self) -> Endpoint {
        match &self.inner {
            Bound::Tcp(l) => Endpoint::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "0.0.0.0:0".to_string()),
            ),
            #[cfg(unix)]
            Bound::Unix(_, path) => Endpoint::Unix(path.clone()),
        }
    }

    fn try_accept(&self) -> std::io::Result<Option<Stream>> {
        match &self.inner {
            Bound::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    let _ = s.set_nodelay(true);
                    s.set_nonblocking(false)?;
                    Ok(Some(Stream::Tcp(s)))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Bound::Unix(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Stream::Unix(s)))
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for NetListener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Bound::Unix(_, path) = &self.inner {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Listener for NetListener {
    fn accept_deadline(&self, deadline: Instant) -> Result<Box<dyn Link>, ConnectError> {
        loop {
            match self.try_accept_link()? {
                Some(link) => return Ok(link),
                None => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ConnectError::DeadlineExceeded);
                    }
                    std::thread::sleep(RETRY_INTERVAL.min(deadline - now));
                }
            }
        }
    }

    fn try_accept_link(&self) -> Result<Option<Box<dyn Link>>, ConnectError> {
        loop {
            match self.try_accept() {
                Ok(Some(stream)) => {
                    let peer = self.next_peer.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(Box::new(NetLink::from_stream(stream, peer)?)));
                }
                Ok(None) => return Ok(None),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(ConnectError::Io(e.to_string())),
            }
        }
    }

    fn poll_fd(&self) -> Option<i32> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            Some(match &self.inner {
                Bound::Tcp(l) => l.as_raw_fd(),
                Bound::Unix(l, _) => l.as_raw_fd(),
            })
        }
        #[cfg(not(unix))]
        {
            None
        }
    }

    fn local_addr(&self) -> String {
        self.local_endpoint().to_string()
    }
}

/// Connects to a listening server, retrying until `deadline` — the server
/// may not be up yet when a client process launches. The returned link is
/// addressed as [`SERVER_PEER`].
pub fn connect(endpoint: &Endpoint, deadline: Instant) -> Result<NetLink, ConnectError> {
    loop {
        let attempt = match endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr).map(|s| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            #[cfg(unix)]
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        };
        match attempt {
            Ok(stream) => return NetLink::from_stream(stream, SERVER_PEER),
            Err(e) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(ConnectError::Refused(e.to_string()));
                }
                std::thread::sleep(RETRY_INTERVAL.min(deadline - now));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelBroadcast, WireMessage};
    use std::time::Duration;

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(10)
    }

    fn tcp_pair() -> (Box<dyn Link>, NetLink) {
        let listener =
            NetListener::bind(&Endpoint::parse("127.0.0.1:0").unwrap()).expect("bind tcp");
        let ep = listener.local_endpoint();
        let client = connect(&ep, far()).expect("connect");
        let server_side = listener.accept_deadline(far()).expect("accept");
        (server_side, client)
    }

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:7700").unwrap(),
            Endpoint::Tcp("127.0.0.1:7700".to_string())
        );
        assert_eq!(
            Endpoint::parse("tcp:localhost:80").unwrap(),
            Endpoint::Tcp("localhost:80".to_string())
        );
        assert!(matches!(
            Endpoint::parse("no-port"),
            Err(ConnectError::BadAddress(_))
        ));
        #[cfg(unix)]
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
    }

    #[test]
    fn empty_host_and_empty_path_get_typed_errors() {
        // A bare `:99` / `tcp::99` names a port but no host; a bare
        // `unix:` names no path. Each failure mode has its own variant so
        // a CLI can say exactly what is missing.
        assert_eq!(
            Endpoint::parse(":99"),
            Err(ConnectError::EmptyHost(":99".to_string()))
        );
        assert_eq!(
            Endpoint::parse("tcp::99"),
            Err(ConnectError::EmptyHost("tcp::99".to_string()))
        );
        assert_eq!(
            Endpoint::parse("unix:"),
            Err(ConnectError::EmptyPath("unix:".to_string()))
        );
        // The non-empty forms still parse.
        assert!(Endpoint::parse("tcp:localhost:99").is_ok());
    }

    #[test]
    fn tcp_frames_round_trip_in_order() {
        let (server_side, client) = tcp_pair();
        assert_eq!(client.peer_id(), SERVER_PEER);
        assert_eq!(server_side.peer_id(), 1);
        let msg = WireMessage::ModelBroadcast(ModelBroadcast {
            task: 2,
            round: 5,
            model: vec![1.0, -0.5, 3.25],
        });
        client.send(&msg.encode()).unwrap();
        client.send(&[9, 9]).unwrap();
        let first = server_side.recv_deadline(far()).unwrap();
        assert_eq!(WireMessage::decode(&first).unwrap(), msg);
        assert_eq!(server_side.recv_deadline(far()).unwrap(), vec![9, 9]);
        // And the other direction.
        server_side.send(&[1]).unwrap();
        assert_eq!(client.recv_deadline(far()).unwrap(), vec![1]);
    }

    #[test]
    fn tcp_recv_blocks_until_deadline_without_spinning() {
        // The OS read timeout does the waiting: one syscall per remaining
        // time slice, not a poll loop. We can only assert the timing side
        // here; the loopback test asserts the wait-count side.
        let (server_side, _client) = tcp_pair();
        let start = Instant::now();
        let deadline = start + Duration::from_millis(80);
        assert_eq!(
            server_side.recv_deadline(deadline),
            Err(RecvError::DeadlineExceeded)
        );
        assert!(start.elapsed() >= Duration::from_millis(60));
    }

    #[test]
    fn tcp_partial_frame_survives_timeout() {
        let (server_side, client) = tcp_pair();
        // Send only the length prefix; the body follows after the first
        // receive call has already timed out holding partial state.
        let frame = vec![7u8; 10];
        {
            let mut w = client.writer.lock().unwrap();
            w.stream
                .write_all(&(frame.len() as u32).to_le_bytes())
                .unwrap();
            w.stream.flush().unwrap();
        }
        assert_eq!(
            server_side.recv_deadline(Instant::now() + Duration::from_millis(40)),
            Err(RecvError::DeadlineExceeded)
        );
        client.send_raw_body(&frame);
        assert_eq!(server_side.recv_deadline(far()).unwrap(), frame);
    }

    impl NetLink {
        fn send_raw_body(&self, body: &[u8]) {
            let mut w = self.writer.lock().unwrap();
            w.stream.write_all(body).unwrap();
            w.stream.flush().unwrap();
        }
    }

    #[test]
    fn tcp_disconnect_is_typed() {
        let (server_side, client) = tcp_pair();
        client.close();
        drop(client);
        assert_eq!(
            server_side.recv_deadline(far()),
            Err(RecvError::Disconnected)
        );
    }

    #[test]
    fn absurd_length_prefix_is_framing_error_not_allocation() {
        let (server_side, client) = tcp_pair();
        {
            let mut w = client.writer.lock().unwrap();
            w.stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
            w.stream.flush().unwrap();
        }
        assert!(matches!(
            server_side.recv_deadline(far()),
            Err(RecvError::Frame(WireError::Malformed(_)))
        ));
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let dir = std::env::temp_dir().join(format!("refil-wire-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.sock");
        let ep = Endpoint::Unix(path.clone());
        let listener = NetListener::bind(&ep).expect("bind unix");
        let client = connect(&ep, far()).expect("connect unix");
        let server_side = listener.accept_deadline(far()).expect("accept unix");
        client.send(&[5, 6, 7]).unwrap();
        assert_eq!(server_side.recv_deadline(far()).unwrap(), vec![5, 6, 7]);
        server_side.send(&[8]).unwrap();
        assert_eq!(client.recv_deadline(far()).unwrap(), vec![8]);
        drop(listener);
        assert!(!path.exists(), "listener drop removes the socket file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn try_recv_frame_reassembles_partial_frames_without_blocking() {
        let (server_side, client) = tcp_pair();
        server_side.set_nonblocking(true).unwrap();
        // Nothing sent yet: an immediate None, not a block.
        let start = Instant::now();
        assert_eq!(server_side.try_recv_frame().unwrap(), None);
        assert!(start.elapsed() < Duration::from_millis(50));
        // Trickle one frame in three fragments; the reassembly state must
        // survive across try_recv_frame calls.
        let frame = vec![3u8; 9];
        let mut wire = (frame.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&frame);
        let chunks: Vec<&[u8]> = wire.chunks(5).collect();
        for (i, chunk) in chunks.iter().enumerate() {
            client.send_raw_body(chunk);
            std::thread::sleep(Duration::from_millis(10));
            if i + 1 < chunks.len() {
                assert_eq!(server_side.try_recv_frame().unwrap(), None);
            }
        }
        let got = loop {
            if let Some(f) = server_side.try_recv_frame().unwrap() {
                break f;
            }
        };
        assert_eq!(got, frame);
        // A disconnect surfaces as the typed error, same as recv_deadline.
        client.close();
        drop(client);
        let err = loop {
            match server_side.try_recv_frame() {
                Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                Ok(Some(_)) => panic!("no frame was sent"),
                Err(e) => break e,
            }
        };
        assert_eq!(err, RecvError::Disconnected);
    }

    #[test]
    fn enqueue_buffers_under_backpressure_and_try_flush_drains() {
        let (server_side, client) = tcp_pair();
        server_side.set_nonblocking(true).unwrap();
        // Stuff large frames without the peer reading until the socket
        // buffer fills and bytes start pending locally.
        let frame = vec![7u8; 256 * 1024];
        let mut sent = 0usize;
        let pending = loop {
            let pending = server_side.enqueue_frame(&frame).unwrap();
            sent += 1;
            assert_eq!(server_side.pending_tx(), pending);
            if pending > 0 {
                break pending;
            }
            assert!(sent < 1024, "socket buffer never filled");
        };
        assert!(pending > 0);
        // Drain the peer side; try_flush must eventually empty the buffer
        // and every queued frame must arrive intact and in order.
        let reader = std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(30);
            (0..sent)
                .map(|_| client.recv_deadline(deadline).unwrap())
                .collect::<Vec<_>>()
        });
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if server_side.try_flush().unwrap() == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "backlog never drained");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server_side.pending_tx(), 0);
        let got = reader.join().unwrap();
        assert_eq!(got.len(), sent);
        assert!(got.iter().all(|f| f == &frame));
    }

    #[test]
    fn try_accept_link_is_immediate() {
        let listener =
            NetListener::bind(&Endpoint::parse("127.0.0.1:0").unwrap()).expect("bind tcp");
        assert!(listener.try_accept_link().unwrap().is_none());
        let _client = connect(&listener.local_endpoint(), far()).expect("connect");
        let deadline = Instant::now() + Duration::from_secs(5);
        let accepted = loop {
            if let Some(link) = listener.try_accept_link().unwrap() {
                break link;
            }
            assert!(
                Instant::now() < deadline,
                "pending connection never surfaced"
            );
        };
        assert_eq!(accepted.peer_id(), 1);
        #[cfg(unix)]
        {
            assert!(listener.poll_fd().is_some());
            assert!(accepted.poll_fd().is_some());
        }
    }

    #[test]
    fn accept_deadline_expires() {
        let listener =
            NetListener::bind(&Endpoint::parse("127.0.0.1:0").unwrap()).expect("bind tcp");
        let start = Instant::now();
        assert!(matches!(
            listener.accept_deadline(start + Duration::from_millis(50)),
            Err(ConnectError::DeadlineExceeded)
        ));
        assert!(start.elapsed() >= Duration::from_millis(40));
    }
}
