//! Typed message envelopes and their payload codecs.
//!
//! Each struct mirrors one protocol exchange; [`WireMessage`] is the
//! decoded union. Payload layouts are little-endian and length-prefixed;
//! see the crate docs for the frame header wrapping every payload.

use crate::frame::{
    open_frame, seal_frame, MessageKind, Reader, WireError, Writer, HEADER_LEN, MAGIC,
    SCHEMA_VERSION,
};

/// Server → client: the global model parameters opening a round.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBroadcast {
    /// Task (0-based) the round belongs to.
    pub task: u32,
    /// Round within the task.
    pub round: u32,
    /// Flat global parameter vector.
    pub model: Vec<f32>,
}

/// Client → server: locally trained parameters plus the FedAvg weight.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientModelUpdate {
    /// Reporting client.
    pub client_id: u64,
    /// FedAvg weight (normally the local sample count).
    pub weight: f32,
    /// Flat updated parameter vector.
    pub model: Vec<f32>,
}

/// One client's class-wise prompt means for a round (RefFiL Eq. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct PromptGroup {
    /// Originating client.
    pub client_id: u64,
    /// `(class, flattened p*d prompt)` pairs for locally present classes.
    pub prompts: Vec<(u32, Vec<f32>)>,
}

/// Client → server: Local Prompt Groups uploaded alongside the model
/// (RefFiL Algorithm 1 line 29). Usually one group; the weighted-sharing
/// ablation uploads several copies.
#[derive(Debug, Clone, PartialEq)]
pub struct PromptUpload {
    /// Uploading client.
    pub client_id: u64,
    /// The uploaded groups.
    pub groups: Vec<PromptGroup>,
}

/// Server → client: the clustered global prompt state broadcast each round
/// (post-FINCH representatives, RefFiL Eq. 4–5, plus the generalized prompt
/// of Eq. 8 when available).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalPromptBroadcast {
    /// Task the broadcast belongs to.
    pub task: u32,
    /// Round within the task.
    pub round: u32,
    /// `(class, flattened prompt)` DPCL candidate representatives.
    pub candidates: Vec<(u32, Vec<f32>)>,
    /// Generalized global prompt `P̄^g`, absent while the store is empty.
    pub generalized: Option<Vec<f32>>,
}

/// Client → server: a secure-aggregation masked update (Bonawitz-style
/// pairwise masking; masks cancel in the server-side sum).
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedModelUpdate {
    /// Reporting client (defines mask pairing).
    pub client_id: u64,
    /// Aggregation weight (not hidden; only parameters are masked).
    pub weight: f32,
    /// Masked, weight-scaled parameters.
    pub masked: Vec<f32>,
}

/// One raw sample in transit (rehearsal oracle only — the privacy
/// violation rehearsal-free methods exist to avoid).
#[derive(Debug, Clone, PartialEq)]
pub struct WireSample {
    /// Class label.
    pub label: u32,
    /// Input features.
    pub features: Vec<f32>,
}

/// Episodic-memory samples a session commits to its client's buffer,
/// routed through the server like every other exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct RehearsalMemory {
    /// Owning client.
    pub client_id: u64,
    /// Deterministic reservoir seed for the commit.
    pub seed: u64,
    /// Samples to remember.
    pub samples: Vec<WireSample>,
}

/// A decoded wire message: the typed union of every protocol exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Server → client global model parameters.
    ModelBroadcast(ModelBroadcast),
    /// Client → server trained parameters + weight.
    ClientModelUpdate(ClientModelUpdate),
    /// Client → server Local Prompt Groups.
    PromptUpload(PromptUpload),
    /// Server → client clustered prompt state.
    GlobalPromptBroadcast(GlobalPromptBroadcast),
    /// Client → server masked parameters.
    MaskedModelUpdate(MaskedModelUpdate),
    /// Episodic memory in transit.
    RehearsalMemory(RehearsalMemory),
}

fn f32s_len(v: &[f32]) -> usize {
    4 + 4 * v.len()
}

impl WireMessage {
    /// The message's wire kind.
    pub fn kind(&self) -> MessageKind {
        match self {
            Self::ModelBroadcast(_) => MessageKind::ModelBroadcast,
            Self::ClientModelUpdate(_) => MessageKind::ClientModelUpdate,
            Self::PromptUpload(_) => MessageKind::PromptUpload,
            Self::GlobalPromptBroadcast(_) => MessageKind::GlobalPromptBroadcast,
            Self::MaskedModelUpdate(_) => MessageKind::MaskedModelUpdate,
            Self::RehearsalMemory(_) => MessageKind::RehearsalMemory,
        }
    }

    /// Exact encoded frame size in bytes (header + payload), computed
    /// without encoding. `encode().len() == encoded_len()` always; traffic
    /// accounting relies on this when the codec is bypassed.
    pub fn encoded_len(&self) -> usize {
        let payload = match self {
            Self::ModelBroadcast(m) => 8 + f32s_len(&m.model),
            Self::ClientModelUpdate(m) => 12 + f32s_len(&m.model),
            Self::PromptUpload(m) => {
                12 + m
                    .groups
                    .iter()
                    .map(|g| {
                        12 + g
                            .prompts
                            .iter()
                            .map(|(_, v)| 4 + f32s_len(v))
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            }
            Self::GlobalPromptBroadcast(m) => {
                13 + m
                    .candidates
                    .iter()
                    .map(|(_, v)| 4 + f32s_len(v))
                    .sum::<usize>()
                    + m.generalized.as_deref().map_or(0, f32s_len)
            }
            Self::MaskedModelUpdate(m) => 12 + f32s_len(&m.masked),
            Self::RehearsalMemory(m) => {
                20 + m
                    .samples
                    .iter()
                    .map(|s| 4 + f32s_len(&s.features))
                    .sum::<usize>()
            }
        };
        HEADER_LEN + payload
    }

    /// Encodes the message into one sealed frame (header + payload + CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.kind() as u16).to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]); // length + checksum, sealed below
        let mut w = Writer(&mut buf);
        match self {
            Self::ModelBroadcast(m) => {
                w.u32(m.task);
                w.u32(m.round);
                w.f32s(&m.model);
            }
            Self::ClientModelUpdate(m) => {
                w.u64(m.client_id);
                w.f32(m.weight);
                w.f32s(&m.model);
            }
            Self::PromptUpload(m) => {
                w.u64(m.client_id);
                w.u32(u32::try_from(m.groups.len()).expect("group count"));
                for g in &m.groups {
                    w.u64(g.client_id);
                    w.u32(u32::try_from(g.prompts.len()).expect("prompt count"));
                    for (class, v) in &g.prompts {
                        w.u32(*class);
                        w.f32s(v);
                    }
                }
            }
            Self::GlobalPromptBroadcast(m) => {
                w.u32(m.task);
                w.u32(m.round);
                w.u32(u32::try_from(m.candidates.len()).expect("candidate count"));
                for (class, v) in &m.candidates {
                    w.u32(*class);
                    w.f32s(v);
                }
                match &m.generalized {
                    Some(v) => {
                        w.u8(1);
                        w.f32s(v);
                    }
                    None => w.u8(0),
                }
            }
            Self::MaskedModelUpdate(m) => {
                w.u64(m.client_id);
                w.f32(m.weight);
                w.f32s(&m.masked);
            }
            Self::RehearsalMemory(m) => {
                w.u64(m.client_id);
                w.u64(m.seed);
                w.u32(u32::try_from(m.samples.len()).expect("sample count"));
                for s in &m.samples {
                    w.u32(s.label);
                    w.f32s(&s.features);
                }
            }
        }
        seal_frame(&mut buf);
        debug_assert_eq!(buf.len(), self.encoded_len());
        buf
    }

    /// Decodes one frame, validating magic, version, kind, length, and
    /// checksum before touching the payload. Never panics on foreign bytes.
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let (kind, payload) = open_frame(frame)?;
        let mut r = Reader::new(payload);
        let msg = match kind {
            MessageKind::ModelBroadcast => Self::ModelBroadcast(ModelBroadcast {
                task: r.u32("task")?,
                round: r.u32("round")?,
                model: r.f32s("model")?,
            }),
            MessageKind::ClientModelUpdate => Self::ClientModelUpdate(ClientModelUpdate {
                client_id: r.u64("client_id")?,
                weight: r.f32("weight")?,
                model: r.f32s("model")?,
            }),
            MessageKind::PromptUpload => {
                let client_id = r.u64("client_id")?;
                let n_groups = r.count(12, "group count")?;
                let mut groups = Vec::with_capacity(n_groups);
                for _ in 0..n_groups {
                    let gid = r.u64("group client_id")?;
                    let n_prompts = r.count(8, "prompt count")?;
                    let mut prompts = Vec::with_capacity(n_prompts);
                    for _ in 0..n_prompts {
                        let class = r.u32("prompt class")?;
                        prompts.push((class, r.f32s("prompt values")?));
                    }
                    groups.push(PromptGroup {
                        client_id: gid,
                        prompts,
                    });
                }
                Self::PromptUpload(PromptUpload { client_id, groups })
            }
            MessageKind::GlobalPromptBroadcast => {
                let task = r.u32("task")?;
                let round = r.u32("round")?;
                let n_cands = r.count(8, "candidate count")?;
                let mut candidates = Vec::with_capacity(n_cands);
                for _ in 0..n_cands {
                    let class = r.u32("candidate class")?;
                    candidates.push((class, r.f32s("candidate values")?));
                }
                let generalized = match r.u8("generalized tag")? {
                    0 => None,
                    1 => Some(r.f32s("generalized prompt")?),
                    _ => return Err(WireError::Malformed("generalized tag")),
                };
                Self::GlobalPromptBroadcast(GlobalPromptBroadcast {
                    task,
                    round,
                    candidates,
                    generalized,
                })
            }
            MessageKind::MaskedModelUpdate => Self::MaskedModelUpdate(MaskedModelUpdate {
                client_id: r.u64("client_id")?,
                weight: r.f32("weight")?,
                masked: r.f32s("masked")?,
            }),
            MessageKind::RehearsalMemory => {
                let client_id = r.u64("client_id")?;
                let seed = r.u64("seed")?;
                let n_samples = r.count(8, "sample count")?;
                let mut samples = Vec::with_capacity(n_samples);
                for _ in 0..n_samples {
                    let label = r.u32("sample label")?;
                    samples.push(WireSample {
                        label,
                        features: r.f32s("sample features")?,
                    });
                }
                Self::RehearsalMemory(RehearsalMemory {
                    client_id,
                    seed,
                    samples,
                })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn exemplars() -> Vec<WireMessage> {
        vec![
            WireMessage::ModelBroadcast(ModelBroadcast {
                task: 1,
                round: 2,
                model: vec![0.5, -1.25, f32::MIN_POSITIVE, 3.0e8],
            }),
            WireMessage::ClientModelUpdate(ClientModelUpdate {
                client_id: 7,
                weight: 42.0,
                model: vec![1.0],
            }),
            WireMessage::PromptUpload(PromptUpload {
                client_id: 3,
                groups: vec![
                    PromptGroup {
                        client_id: 3,
                        prompts: vec![(0, vec![0.1, 0.2]), (2, vec![-0.3, 0.4])],
                    },
                    PromptGroup {
                        client_id: 3,
                        prompts: Vec::new(),
                    },
                ],
            }),
            WireMessage::GlobalPromptBroadcast(GlobalPromptBroadcast {
                task: 0,
                round: 0,
                candidates: Vec::new(),
                generalized: None,
            }),
            WireMessage::GlobalPromptBroadcast(GlobalPromptBroadcast {
                task: 4,
                round: 9,
                candidates: vec![(1, vec![1.5; 4])],
                generalized: Some(vec![0.25; 4]),
            }),
            WireMessage::MaskedModelUpdate(MaskedModelUpdate {
                client_id: u64::MAX,
                weight: 0.5,
                masked: vec![9.75, -2.0],
            }),
            WireMessage::RehearsalMemory(RehearsalMemory {
                client_id: 11,
                seed: 0xdead_beef,
                samples: vec![
                    WireSample {
                        label: 2,
                        features: vec![0.0, 1.0, 2.0],
                    },
                    WireSample {
                        label: 0,
                        features: Vec::new(),
                    },
                ],
            }),
        ]
    }

    #[test]
    fn every_exemplar_round_trips_bit_exactly() {
        for msg in exemplars() {
            let frame = msg.encode();
            assert_eq!(frame.len(), msg.encoded_len(), "{:?}", msg.kind());
            let back = WireMessage::decode(&frame).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(back.kind(), msg.kind());
        }
    }

    #[test]
    fn special_float_payloads_survive() {
        let msg = WireMessage::ModelBroadcast(ModelBroadcast {
            task: 0,
            round: 0,
            model: vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 0.0],
        });
        let WireMessage::ModelBroadcast(back) = WireMessage::decode(&msg.encode()).unwrap() else {
            panic!("wrong kind");
        };
        // Bit-exact comparison (NaN payloads included).
        let WireMessage::ModelBroadcast(orig) = msg else {
            unreachable!()
        };
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.model), bits(&orig.model));
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let mut frame = exemplars()[0].encode();
        frame[0] ^= 0xff;
        assert!(matches!(
            WireMessage::decode(&frame),
            Err(WireError::BadMagic { .. })
        ));
        let mut frame = exemplars()[0].encode();
        frame[4] = 0x7f;
        assert!(matches!(
            WireMessage::decode(&frame),
            Err(WireError::VersionMismatch { got: 0x7f, .. })
        ));
    }

    #[test]
    fn truncation_and_extension_are_detected() {
        let frame = exemplars()[0].encode();
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN, frame.len() - 1] {
            let err = WireMessage::decode(&frame[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::LengthMismatch { .. }
                ),
                "cut {cut}: {err}"
            );
        }
        let mut extended = frame.clone();
        extended.push(0);
        assert!(matches!(
            WireMessage::decode(&extended),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let mut frame = exemplars()[0].encode();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(
            WireMessage::decode(&frame),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn kind_flips_between_identical_layouts_are_caught() {
        // ClientModelUpdate and MaskedModelUpdate share a payload layout;
        // only the header-covering checksum tells them apart.
        let msg = WireMessage::ClientModelUpdate(ClientModelUpdate {
            client_id: 1,
            weight: 2.0,
            model: vec![3.0],
        });
        let mut frame = msg.encode();
        frame[6] = MessageKind::MaskedModelUpdate as u16 as u8;
        assert!(matches!(
            WireMessage::decode(&frame),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }
}
