//! Typed message envelopes and their payload codecs.
//!
//! Each struct mirrors one protocol exchange; [`WireMessage`] is the
//! decoded union. Payload layouts are little-endian and length-prefixed;
//! see the crate docs for the frame header wrapping every payload.

use crate::compress::{topk_count, topk_positions, CompressionSpec, QuantValues, SparseIndex};
use crate::frame::{
    bytes_len, open_frame, seal_frame, MessageKind, Reader, WireError, Writer, HEADER_LEN, MAGIC,
    SCHEMA_VERSION,
};

/// Server → client: the global model parameters opening a round.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBroadcast {
    /// Task (0-based) the round belongs to.
    pub task: u32,
    /// Round within the task.
    pub round: u32,
    /// Flat global parameter vector.
    pub model: Vec<f32>,
}

/// Client → server: locally trained parameters plus the FedAvg weight.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientModelUpdate {
    /// Reporting client.
    pub client_id: u64,
    /// FedAvg weight (normally the local sample count).
    pub weight: f32,
    /// Flat updated parameter vector.
    pub model: Vec<f32>,
}

/// One client's class-wise prompt means for a round (RefFiL Eq. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct PromptGroup {
    /// Originating client.
    pub client_id: u64,
    /// `(class, flattened p*d prompt)` pairs for locally present classes.
    pub prompts: Vec<(u32, Vec<f32>)>,
}

/// Client → server: Local Prompt Groups uploaded alongside the model
/// (RefFiL Algorithm 1 line 29). Usually one group; the weighted-sharing
/// ablation uploads several copies.
#[derive(Debug, Clone, PartialEq)]
pub struct PromptUpload {
    /// Uploading client.
    pub client_id: u64,
    /// The uploaded groups.
    pub groups: Vec<PromptGroup>,
}

/// Server → client: the clustered global prompt state broadcast each round
/// (post-FINCH representatives, RefFiL Eq. 4–5, plus the generalized prompt
/// of Eq. 8 when available).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalPromptBroadcast {
    /// Task the broadcast belongs to.
    pub task: u32,
    /// Round within the task.
    pub round: u32,
    /// `(class, flattened prompt)` DPCL candidate representatives.
    pub candidates: Vec<(u32, Vec<f32>)>,
    /// Generalized global prompt `P̄^g`, absent while the store is empty.
    pub generalized: Option<Vec<f32>>,
}

/// Client → server: a secure-aggregation masked update (Bonawitz-style
/// pairwise masking; masks cancel in the server-side sum).
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedModelUpdate {
    /// Reporting client (defines mask pairing).
    pub client_id: u64,
    /// Aggregation weight (not hidden; only parameters are masked).
    pub weight: f32,
    /// Masked, weight-scaled parameters.
    pub masked: Vec<f32>,
}

/// One raw sample in transit (rehearsal oracle only — the privacy
/// violation rehearsal-free methods exist to avoid).
#[derive(Debug, Clone, PartialEq)]
pub struct WireSample {
    /// Class label.
    pub label: u32,
    /// Input features.
    pub features: Vec<f32>,
}

/// Episodic-memory samples a session commits to its client's buffer,
/// routed through the server like every other exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct RehearsalMemory {
    /// Owning client.
    pub client_id: u64,
    /// Deterministic reservoir seed for the commit.
    pub seed: u64,
    /// Samples to remember.
    pub samples: Vec<WireSample>,
}

/// Client → server: a compressed model update. Carries delta/top-k/quantized
/// parameters relative to a [`ModelBroadcast`] the client applied; the server
/// reconstructs the full update from its own broadcast history, keyed by the
/// `(base_task, base_round)` tag. Built by [`CompressedModelUpdate::compress`]
/// under a negotiated [`CompressionSpec`]; self-describing, so reconstruction
/// needs only the base model, not the spec.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedModelUpdate {
    /// Reporting client.
    pub client_id: u64,
    /// FedAvg weight (never compressed).
    pub weight: f32,
    /// Task of the [`ModelBroadcast`] the values are relative to.
    pub base_task: u32,
    /// Round of that broadcast within its task.
    pub base_round: u32,
    /// When true, carried values are `x − base` and reconstruction adds the
    /// base back; when false they are absolute replacements.
    pub delta: bool,
    /// Full flat parameter count; coordinates the index leaves out keep
    /// their base (broadcast) value on reconstruction.
    pub total_len: u32,
    /// Which coordinates the update carries.
    pub index: SparseIndex,
    /// The carried values, ascending coordinate order, possibly quantized.
    pub values: QuantValues,
}

impl CompressedModelUpdate {
    /// Compresses a trained flat parameter vector against the broadcast it
    /// was trained from, in the fixed composition order delta → top-k →
    /// quant. `mask` restricts the exchanged coordinates (ascending, unique;
    /// a strategy's partial-exchange set) before top-k applies; `None`
    /// considers every coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `flat` and `base` lengths differ or a mask index is out of
    /// range — both are caller bugs, not wire conditions.
    #[allow(clippy::too_many_arguments)]
    pub fn compress(
        spec: &CompressionSpec,
        mask: Option<&[u32]>,
        client_id: u64,
        weight: f32,
        flat: &[f32],
        base: &[f32],
        base_task: u32,
        base_round: u32,
    ) -> Self {
        assert_eq!(flat.len(), base.len(), "flat/base length mismatch");
        let candidates: Vec<usize> = match mask {
            Some(m) => m.iter().map(|&i| i as usize).collect(),
            None => (0..flat.len()).collect(),
        };
        let vals: Vec<f32> = candidates
            .iter()
            .map(|&i| {
                if spec.delta {
                    flat[i] - base[i]
                } else {
                    flat[i]
                }
            })
            .collect();
        let k = topk_count(spec.topk_fraction, vals.len());
        let keep = topk_positions(&vals, k);
        let positions: Vec<usize> = keep.iter().map(|&p| candidates[p]).collect();
        let kept: Vec<f32> = keep.iter().map(|&p| vals[p]).collect();
        Self {
            client_id,
            weight,
            base_task,
            base_round,
            delta: spec.delta,
            total_len: u32::try_from(flat.len()).expect("model exceeds u32 framing"),
            index: SparseIndex::for_positions(&positions, flat.len()),
            values: QuantValues::quantize(spec.quant, &kept),
        }
    }

    /// Rebuilds the full flat update against `base` (the tagged broadcast):
    /// carried coordinates are dequantized (and added to the base under
    /// delta mode); everything else keeps its base value.
    pub fn reconstruct(&self, base: &[f32]) -> Result<Vec<f32>, WireError> {
        if base.len() != self.total_len as usize {
            return Err(WireError::Malformed("base length mismatch"));
        }
        let positions = self.index.positions(base.len());
        let vals = self.values.dequantize();
        if positions.len() != vals.len() {
            return Err(WireError::Malformed("value count mismatch"));
        }
        let mut out = base.to_vec();
        for (&i, &v) in positions.iter().zip(&vals) {
            out[i] = if self.delta { base[i] + v } else { v };
        }
        Ok(out)
    }

    /// Frame size of the equivalent *uncompressed* [`ClientModelUpdate`],
    /// for raw-vs-encoded byte accounting.
    pub fn uncompressed_frame_len(&self) -> usize {
        HEADER_LEN + 12 + 4 + 4 * self.total_len as usize
    }
}

/// Session-resumption claim inside a [`Hello`]: which earlier session the
/// reconnecting client is, and how far through the server's catch-up log
/// its replica already got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resume {
    /// Token from the previous [`Welcome`] on this server.
    pub token: u64,
    /// Count of catch-up (replay-log) frames the client's replica has
    /// already applied; the server resumes the replay from this index.
    pub cursor: u64,
}

/// Client → server: the first frame on a fresh connection. The nonce is
/// echoed nowhere; it exists so a handshake frame is never empty and can
/// carry a client-chosen tag in logs.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Client-chosen tag (e.g. a PID), for server-side logs only.
    pub nonce: u64,
    /// Highest compression codec revision the client supports
    /// ([`crate::compress::CODEC_REVISION`]); 0 means the legacy protocol
    /// without [`CompressedModelUpdate`] support, and the server will not
    /// assign such a peer a compression spec.
    pub codec: u8,
    /// Resumption claim when the client is reconnecting with its replica
    /// state intact. The server then replays only the control frames past
    /// the claimed cursor instead of the full catch-up log.
    pub resume: Option<Resume>,
}

/// Server → client: handshake reply. After this the client replays any
/// catch-up frames the server queued and then participates from the next
/// round boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Welcome {
    /// The peer id the listener assigned to this connection.
    pub peer_id: u64,
    /// Session token the client presents in [`Hello::resume`] if it
    /// reconnects, entitling it to an incremental replay.
    pub resume_token: u64,
    /// Opaque run-spec string (the server's serialized experiment spec) so
    /// a bare client process can reconstruct the replicated state.
    pub spec: String,
    /// Compression spec this peer must apply to its uplink updates, when
    /// the run compresses and the peer's [`Hello::codec`] supports it.
    /// `None` keeps the peer on plain [`ClientModelUpdate`] frames.
    pub compression: Option<CompressionSpec>,
}

/// One session assignment inside a [`RoundStart`]: which logical client a
/// peer trains this round, and with what seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionAssignment {
    /// Logical client to train.
    pub client_id: u64,
    /// Client group code (0 = old, 1 = between, 2 = new).
    pub group: u8,
    /// Per-session RNG seed drawn by the server.
    pub seed: u64,
}

/// Server → client: opens a round. The model broadcast (and the optional
/// strategy broadcast) travel as *nested encoded frames*, so the bytes a
/// logical client receives are identical to the loopback run's.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStart {
    /// Task the round belongs to.
    pub task: u32,
    /// Round within the task.
    pub round: u32,
    /// Nested encoded [`ModelBroadcast`] frame.
    pub model: Vec<u8>,
    /// Nested encoded strategy broadcast frame, when the strategy emits one.
    pub extra: Option<Vec<u8>>,
    /// The sessions this peer trains this round (possibly empty).
    pub sessions: Vec<SessionAssignment>,
}

/// Client → server: one trained session's results. Tagged with task and
/// round so the server can discard results that arrive after the round's
/// deadline already passed.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Task the session belonged to.
    pub task: u32,
    /// Round the session belonged to.
    pub round: u32,
    /// Logical client that was trained.
    pub client_id: u64,
    /// Wall-clock training time on the client, for session stats.
    pub wall_ns: u64,
    /// Nested encoded [`ClientModelUpdate`] frame.
    pub update: Vec<u8>,
    /// Nested encoded merge frame (e.g. a [`PromptUpload`]), if any.
    pub merge: Option<Vec<u8>>,
}

/// Server → client: closes a round. Replicas apply the ordered merge
/// frames, then run their round-end hooks against the new global model.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSync {
    /// Task the round belonged to.
    pub task: u32,
    /// Round within the task.
    pub round: u32,
    /// Post-aggregate global parameter vector.
    pub global: Vec<f32>,
    /// `(client_id, nested encoded merge frame)` in client-id order.
    pub merges: Vec<(u64, Vec<u8>)>,
}

/// Server → client: a task is starting; replicas run task setup (data
/// partition, strategy task-start hook) against this global model.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskBegin {
    /// Task (0-based) that is starting.
    pub task: u32,
    /// Global parameter vector entering the task.
    pub global: Vec<f32>,
}

/// Server → client: a task finished; replicas run task teardown (strategy
/// task-end hook, data carry-forward) against this global model.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskEnd {
    /// Task (0-based) that finished.
    pub task: u32,
    /// Global parameter vector leaving the task.
    pub global: Vec<f32>,
}

/// Either direction: participation is over. Server → client when the run
/// completes or aborts; client → server for a voluntary mid-run leave.
#[derive(Debug, Clone, PartialEq)]
pub struct RunEnd {
    /// 0 = run complete, 1 = voluntary leave, 2 = abort.
    pub reason: u8,
}

impl RunEnd {
    /// The run finished normally.
    pub const COMPLETE: u8 = 0;
    /// The sender is leaving mid-run.
    pub const LEAVE: u8 = 1;
    /// The run was aborted.
    pub const ABORT: u8 = 2;
}

/// A decoded wire message: the typed union of every protocol exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Server → client global model parameters.
    ModelBroadcast(ModelBroadcast),
    /// Client → server trained parameters + weight.
    ClientModelUpdate(ClientModelUpdate),
    /// Client → server Local Prompt Groups.
    PromptUpload(PromptUpload),
    /// Server → client clustered prompt state.
    GlobalPromptBroadcast(GlobalPromptBroadcast),
    /// Client → server masked parameters.
    MaskedModelUpdate(MaskedModelUpdate),
    /// Episodic memory in transit.
    RehearsalMemory(RehearsalMemory),
    /// Connection handshake, client side.
    Hello(Hello),
    /// Connection handshake, server side.
    Welcome(Welcome),
    /// Round opening with nested broadcasts + assignments.
    RoundStart(RoundStart),
    /// One session's nested results.
    SessionResult(SessionResult),
    /// Round closing with the new global + ordered merges.
    RoundSync(RoundSync),
    /// Task-start marker.
    TaskBegin(TaskBegin),
    /// Task-end marker.
    TaskEnd(TaskEnd),
    /// Run / participation termination.
    RunEnd(RunEnd),
    /// Client → server delta/top-k/quantized parameters.
    CompressedModelUpdate(CompressedModelUpdate),
}

fn f32s_len(v: &[f32]) -> usize {
    4 + 4 * v.len()
}

impl WireMessage {
    /// The message's wire kind.
    pub fn kind(&self) -> MessageKind {
        match self {
            Self::ModelBroadcast(_) => MessageKind::ModelBroadcast,
            Self::ClientModelUpdate(_) => MessageKind::ClientModelUpdate,
            Self::PromptUpload(_) => MessageKind::PromptUpload,
            Self::GlobalPromptBroadcast(_) => MessageKind::GlobalPromptBroadcast,
            Self::MaskedModelUpdate(_) => MessageKind::MaskedModelUpdate,
            Self::RehearsalMemory(_) => MessageKind::RehearsalMemory,
            Self::Hello(_) => MessageKind::Hello,
            Self::Welcome(_) => MessageKind::Welcome,
            Self::RoundStart(_) => MessageKind::RoundStart,
            Self::SessionResult(_) => MessageKind::SessionResult,
            Self::RoundSync(_) => MessageKind::RoundSync,
            Self::TaskBegin(_) => MessageKind::TaskBegin,
            Self::TaskEnd(_) => MessageKind::TaskEnd,
            Self::RunEnd(_) => MessageKind::RunEnd,
            Self::CompressedModelUpdate(_) => MessageKind::CompressedModelUpdate,
        }
    }

    /// Exact encoded frame size in bytes (header + payload), computed
    /// without encoding. `encode().len() == encoded_len()` always; traffic
    /// accounting relies on this when the codec is bypassed.
    pub fn encoded_len(&self) -> usize {
        let payload = match self {
            Self::ModelBroadcast(m) => 8 + f32s_len(&m.model),
            Self::ClientModelUpdate(m) => 12 + f32s_len(&m.model),
            Self::PromptUpload(m) => {
                12 + m
                    .groups
                    .iter()
                    .map(|g| {
                        12 + g
                            .prompts
                            .iter()
                            .map(|(_, v)| 4 + f32s_len(v))
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            }
            Self::GlobalPromptBroadcast(m) => {
                13 + m
                    .candidates
                    .iter()
                    .map(|(_, v)| 4 + f32s_len(v))
                    .sum::<usize>()
                    + m.generalized.as_deref().map_or(0, f32s_len)
            }
            Self::MaskedModelUpdate(m) => 12 + f32s_len(&m.masked),
            Self::RehearsalMemory(m) => {
                20 + m
                    .samples
                    .iter()
                    .map(|s| 4 + f32s_len(&s.features))
                    .sum::<usize>()
            }
            Self::Hello(m) => 10 + if m.resume.is_some() { 16 } else { 0 },
            Self::Welcome(m) => {
                16 + bytes_len(m.spec.as_bytes())
                    + 1
                    + if m.compression.is_some() {
                        CompressionSpec::WIRE_LEN
                    } else {
                        0
                    }
            }
            Self::RoundStart(m) => {
                8 + bytes_len(&m.model)
                    + 1
                    + m.extra.as_deref().map_or(0, bytes_len)
                    + 4
                    + 17 * m.sessions.len()
            }
            Self::SessionResult(m) => {
                24 + bytes_len(&m.update) + 1 + m.merge.as_deref().map_or(0, bytes_len)
            }
            Self::RoundSync(m) => {
                8 + f32s_len(&m.global)
                    + 4
                    + m.merges
                        .iter()
                        .map(|(_, frame)| 8 + bytes_len(frame))
                        .sum::<usize>()
            }
            Self::TaskBegin(m) => 4 + f32s_len(&m.global),
            Self::TaskEnd(m) => 4 + f32s_len(&m.global),
            Self::RunEnd(_) => 1,
            Self::CompressedModelUpdate(m) => 25 + m.index.encoded_len() + m.values.encoded_len(),
        };
        HEADER_LEN + payload
    }

    /// Encodes the message into one sealed frame (header + payload + CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.kind() as u16).to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]); // length + checksum, sealed below
        let mut w = Writer(&mut buf);
        match self {
            Self::ModelBroadcast(m) => {
                w.u32(m.task);
                w.u32(m.round);
                w.f32s(&m.model);
            }
            Self::ClientModelUpdate(m) => {
                w.u64(m.client_id);
                w.f32(m.weight);
                w.f32s(&m.model);
            }
            Self::PromptUpload(m) => {
                w.u64(m.client_id);
                w.u32(u32::try_from(m.groups.len()).expect("group count"));
                for g in &m.groups {
                    w.u64(g.client_id);
                    w.u32(u32::try_from(g.prompts.len()).expect("prompt count"));
                    for (class, v) in &g.prompts {
                        w.u32(*class);
                        w.f32s(v);
                    }
                }
            }
            Self::GlobalPromptBroadcast(m) => {
                w.u32(m.task);
                w.u32(m.round);
                w.u32(u32::try_from(m.candidates.len()).expect("candidate count"));
                for (class, v) in &m.candidates {
                    w.u32(*class);
                    w.f32s(v);
                }
                match &m.generalized {
                    Some(v) => {
                        w.u8(1);
                        w.f32s(v);
                    }
                    None => w.u8(0),
                }
            }
            Self::MaskedModelUpdate(m) => {
                w.u64(m.client_id);
                w.f32(m.weight);
                w.f32s(&m.masked);
            }
            Self::RehearsalMemory(m) => {
                w.u64(m.client_id);
                w.u64(m.seed);
                w.u32(u32::try_from(m.samples.len()).expect("sample count"));
                for s in &m.samples {
                    w.u32(s.label);
                    w.f32s(&s.features);
                }
            }
            Self::Hello(m) => {
                w.u64(m.nonce);
                w.u8(m.codec);
                match m.resume {
                    Some(resume) => {
                        w.u8(1);
                        w.u64(resume.token);
                        w.u64(resume.cursor);
                    }
                    None => w.u8(0),
                }
            }
            Self::Welcome(m) => {
                w.u64(m.peer_id);
                w.u64(m.resume_token);
                w.str(&m.spec);
                match &m.compression {
                    Some(spec) => {
                        w.u8(1);
                        spec.write(&mut w);
                    }
                    None => w.u8(0),
                }
            }
            Self::RoundStart(m) => {
                w.u32(m.task);
                w.u32(m.round);
                w.bytes(&m.model);
                match &m.extra {
                    Some(frame) => {
                        w.u8(1);
                        w.bytes(frame);
                    }
                    None => w.u8(0),
                }
                w.u32(u32::try_from(m.sessions.len()).expect("session count"));
                for s in &m.sessions {
                    w.u64(s.client_id);
                    w.u8(s.group);
                    w.u64(s.seed);
                }
            }
            Self::SessionResult(m) => {
                w.u32(m.task);
                w.u32(m.round);
                w.u64(m.client_id);
                w.u64(m.wall_ns);
                w.bytes(&m.update);
                match &m.merge {
                    Some(frame) => {
                        w.u8(1);
                        w.bytes(frame);
                    }
                    None => w.u8(0),
                }
            }
            Self::RoundSync(m) => {
                w.u32(m.task);
                w.u32(m.round);
                w.f32s(&m.global);
                w.u32(u32::try_from(m.merges.len()).expect("merge count"));
                for (client_id, frame) in &m.merges {
                    w.u64(*client_id);
                    w.bytes(frame);
                }
            }
            Self::TaskBegin(m) => {
                w.u32(m.task);
                w.f32s(&m.global);
            }
            Self::TaskEnd(m) => {
                w.u32(m.task);
                w.f32s(&m.global);
            }
            Self::RunEnd(m) => w.u8(m.reason),
            Self::CompressedModelUpdate(m) => {
                w.u64(m.client_id);
                w.f32(m.weight);
                w.u32(m.base_task);
                w.u32(m.base_round);
                w.u8(u8::from(m.delta));
                w.u32(m.total_len);
                m.index.write(&mut w);
                m.values.write(&mut w);
            }
        }
        seal_frame(&mut buf);
        debug_assert_eq!(buf.len(), self.encoded_len());
        buf
    }

    /// Decodes one frame, validating magic, version, kind, length, and
    /// checksum before touching the payload. Never panics on foreign bytes.
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let (kind, payload) = open_frame(frame)?;
        let mut r = Reader::new(payload);
        let msg = match kind {
            MessageKind::ModelBroadcast => Self::ModelBroadcast(ModelBroadcast {
                task: r.u32("task")?,
                round: r.u32("round")?,
                model: r.f32s("model")?,
            }),
            MessageKind::ClientModelUpdate => Self::ClientModelUpdate(ClientModelUpdate {
                client_id: r.u64("client_id")?,
                weight: r.f32("weight")?,
                model: r.f32s("model")?,
            }),
            MessageKind::PromptUpload => {
                let client_id = r.u64("client_id")?;
                let n_groups = r.count(12, "group count")?;
                let mut groups = Vec::with_capacity(n_groups);
                for _ in 0..n_groups {
                    let gid = r.u64("group client_id")?;
                    let n_prompts = r.count(8, "prompt count")?;
                    let mut prompts = Vec::with_capacity(n_prompts);
                    for _ in 0..n_prompts {
                        let class = r.u32("prompt class")?;
                        prompts.push((class, r.f32s("prompt values")?));
                    }
                    groups.push(PromptGroup {
                        client_id: gid,
                        prompts,
                    });
                }
                Self::PromptUpload(PromptUpload { client_id, groups })
            }
            MessageKind::GlobalPromptBroadcast => {
                let task = r.u32("task")?;
                let round = r.u32("round")?;
                let n_cands = r.count(8, "candidate count")?;
                let mut candidates = Vec::with_capacity(n_cands);
                for _ in 0..n_cands {
                    let class = r.u32("candidate class")?;
                    candidates.push((class, r.f32s("candidate values")?));
                }
                let generalized = match r.u8("generalized tag")? {
                    0 => None,
                    1 => Some(r.f32s("generalized prompt")?),
                    _ => return Err(WireError::Malformed("generalized tag")),
                };
                Self::GlobalPromptBroadcast(GlobalPromptBroadcast {
                    task,
                    round,
                    candidates,
                    generalized,
                })
            }
            MessageKind::MaskedModelUpdate => Self::MaskedModelUpdate(MaskedModelUpdate {
                client_id: r.u64("client_id")?,
                weight: r.f32("weight")?,
                masked: r.f32s("masked")?,
            }),
            MessageKind::RehearsalMemory => {
                let client_id = r.u64("client_id")?;
                let seed = r.u64("seed")?;
                let n_samples = r.count(8, "sample count")?;
                let mut samples = Vec::with_capacity(n_samples);
                for _ in 0..n_samples {
                    let label = r.u32("sample label")?;
                    samples.push(WireSample {
                        label,
                        features: r.f32s("sample features")?,
                    });
                }
                Self::RehearsalMemory(RehearsalMemory {
                    client_id,
                    seed,
                    samples,
                })
            }
            MessageKind::Hello => {
                let nonce = r.u64("nonce")?;
                let codec = r.u8("codec revision")?;
                let resume = match r.u8("resume tag")? {
                    0 => None,
                    1 => Some(Resume {
                        token: r.u64("resume token")?,
                        cursor: r.u64("resume cursor")?,
                    }),
                    _ => return Err(WireError::Malformed("resume tag")),
                };
                Self::Hello(Hello {
                    nonce,
                    codec,
                    resume,
                })
            }
            MessageKind::Welcome => {
                let peer_id = r.u64("peer_id")?;
                let resume_token = r.u64("resume_token")?;
                let spec = r.str("spec")?;
                let compression = match r.u8("compression tag")? {
                    0 => None,
                    1 => Some(CompressionSpec::read(&mut r, "compression spec")?),
                    _ => return Err(WireError::Malformed("compression tag")),
                };
                Self::Welcome(Welcome {
                    peer_id,
                    resume_token,
                    spec,
                    compression,
                })
            }
            MessageKind::RoundStart => {
                let task = r.u32("task")?;
                let round = r.u32("round")?;
                let model = r.bytes("model frame")?;
                let extra = match r.u8("extra tag")? {
                    0 => None,
                    1 => Some(r.bytes("extra frame")?),
                    _ => return Err(WireError::Malformed("extra tag")),
                };
                let n_sessions = r.count(17, "session count")?;
                let mut sessions = Vec::with_capacity(n_sessions);
                for _ in 0..n_sessions {
                    sessions.push(SessionAssignment {
                        client_id: r.u64("session client_id")?,
                        group: r.u8("session group")?,
                        seed: r.u64("session seed")?,
                    });
                }
                Self::RoundStart(RoundStart {
                    task,
                    round,
                    model,
                    extra,
                    sessions,
                })
            }
            MessageKind::SessionResult => {
                let task = r.u32("task")?;
                let round = r.u32("round")?;
                let client_id = r.u64("client_id")?;
                let wall_ns = r.u64("wall_ns")?;
                let update = r.bytes("update frame")?;
                let merge = match r.u8("merge tag")? {
                    0 => None,
                    1 => Some(r.bytes("merge frame")?),
                    _ => return Err(WireError::Malformed("merge tag")),
                };
                Self::SessionResult(SessionResult {
                    task,
                    round,
                    client_id,
                    wall_ns,
                    update,
                    merge,
                })
            }
            MessageKind::RoundSync => {
                let task = r.u32("task")?;
                let round = r.u32("round")?;
                let global = r.f32s("global")?;
                let n_merges = r.count(12, "merge count")?;
                let mut merges = Vec::with_capacity(n_merges);
                for _ in 0..n_merges {
                    let client_id = r.u64("merge client_id")?;
                    merges.push((client_id, r.bytes("merge frame")?));
                }
                Self::RoundSync(RoundSync {
                    task,
                    round,
                    global,
                    merges,
                })
            }
            MessageKind::TaskBegin => Self::TaskBegin(TaskBegin {
                task: r.u32("task")?,
                global: r.f32s("global")?,
            }),
            MessageKind::TaskEnd => Self::TaskEnd(TaskEnd {
                task: r.u32("task")?,
                global: r.f32s("global")?,
            }),
            MessageKind::RunEnd => Self::RunEnd(RunEnd {
                reason: r.u8("reason")?,
            }),
            MessageKind::CompressedModelUpdate => {
                let client_id = r.u64("client_id")?;
                let weight = r.f32("weight")?;
                let base_task = r.u32("base_task")?;
                let base_round = r.u32("base_round")?;
                let delta = match r.u8("delta flag")? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("delta flag")),
                };
                let total_len = r.u32("total_len")?;
                let index = SparseIndex::read(&mut r, total_len as usize, "sparse index")?;
                let values = QuantValues::read(&mut r, "quant values")?;
                if values.len() != index.count(total_len as usize) {
                    return Err(WireError::Malformed("value count mismatch"));
                }
                Self::CompressedModelUpdate(CompressedModelUpdate {
                    client_id,
                    weight,
                    base_task,
                    base_round,
                    delta,
                    total_len,
                    index,
                    values,
                })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{QuantMode, CODEC_REVISION};

    pub(crate) fn exemplars() -> Vec<WireMessage> {
        vec![
            WireMessage::ModelBroadcast(ModelBroadcast {
                task: 1,
                round: 2,
                model: vec![0.5, -1.25, f32::MIN_POSITIVE, 3.0e8],
            }),
            WireMessage::ClientModelUpdate(ClientModelUpdate {
                client_id: 7,
                weight: 42.0,
                model: vec![1.0],
            }),
            WireMessage::PromptUpload(PromptUpload {
                client_id: 3,
                groups: vec![
                    PromptGroup {
                        client_id: 3,
                        prompts: vec![(0, vec![0.1, 0.2]), (2, vec![-0.3, 0.4])],
                    },
                    PromptGroup {
                        client_id: 3,
                        prompts: Vec::new(),
                    },
                ],
            }),
            WireMessage::GlobalPromptBroadcast(GlobalPromptBroadcast {
                task: 0,
                round: 0,
                candidates: Vec::new(),
                generalized: None,
            }),
            WireMessage::GlobalPromptBroadcast(GlobalPromptBroadcast {
                task: 4,
                round: 9,
                candidates: vec![(1, vec![1.5; 4])],
                generalized: Some(vec![0.25; 4]),
            }),
            WireMessage::MaskedModelUpdate(MaskedModelUpdate {
                client_id: u64::MAX,
                weight: 0.5,
                masked: vec![9.75, -2.0],
            }),
            WireMessage::RehearsalMemory(RehearsalMemory {
                client_id: 11,
                seed: 0xdead_beef,
                samples: vec![
                    WireSample {
                        label: 2,
                        features: vec![0.0, 1.0, 2.0],
                    },
                    WireSample {
                        label: 0,
                        features: Vec::new(),
                    },
                ],
            }),
            WireMessage::Hello(Hello {
                nonce: 0x1234,
                codec: 0,
                resume: None,
            }),
            WireMessage::Hello(Hello {
                nonce: 0x99,
                codec: CODEC_REVISION,
                resume: Some(Resume {
                    token: u64::MAX,
                    cursor: 17,
                }),
            }),
            WireMessage::Welcome(Welcome {
                peer_id: 3,
                resume_token: 0xfeed_f00d,
                spec: "{\"dataset\":\"digits\",\"seed\":42}".to_string(),
                compression: None,
            }),
            WireMessage::Welcome(Welcome {
                peer_id: 1,
                resume_token: 0,
                spec: String::new(),
                compression: Some(CompressionSpec {
                    delta: true,
                    quant: QuantMode::Int8,
                    topk_fraction: 0.25,
                }),
            }),
            WireMessage::RoundStart(RoundStart {
                task: 1,
                round: 2,
                model: WireMessage::ModelBroadcast(ModelBroadcast {
                    task: 1,
                    round: 2,
                    model: vec![0.5, -1.0],
                })
                .encode(),
                extra: Some(vec![0xab; 5]),
                sessions: vec![
                    SessionAssignment {
                        client_id: 0,
                        group: 2,
                        seed: 77,
                    },
                    SessionAssignment {
                        client_id: 9,
                        group: 0,
                        seed: u64::MAX,
                    },
                ],
            }),
            WireMessage::RoundStart(RoundStart {
                task: 0,
                round: 0,
                model: Vec::new(),
                extra: None,
                sessions: Vec::new(),
            }),
            WireMessage::SessionResult(SessionResult {
                task: 3,
                round: 1,
                client_id: 4,
                wall_ns: 123_456,
                update: vec![1, 2, 3, 4],
                merge: Some(vec![5, 6]),
            }),
            WireMessage::SessionResult(SessionResult {
                task: 0,
                round: 0,
                client_id: 0,
                wall_ns: 0,
                update: Vec::new(),
                merge: None,
            }),
            WireMessage::RoundSync(RoundSync {
                task: 2,
                round: 4,
                global: vec![1.0, 2.0, -3.5],
                merges: vec![(1, vec![9]), (5, Vec::new())],
            }),
            WireMessage::TaskBegin(TaskBegin {
                task: 0,
                global: vec![0.25],
            }),
            WireMessage::TaskEnd(TaskEnd {
                task: 6,
                global: Vec::new(),
            }),
            WireMessage::RunEnd(RunEnd {
                reason: RunEnd::LEAVE,
            }),
            WireMessage::CompressedModelUpdate(CompressedModelUpdate {
                client_id: 5,
                weight: 12.0,
                base_task: 1,
                base_round: 2,
                delta: true,
                total_len: 6,
                index: SparseIndex::List(vec![0, 3, 5]),
                values: QuantValues::Int8 {
                    zero_point: -0.5,
                    scale: 0.01,
                    codes: vec![0, 130, 255],
                },
            }),
            WireMessage::CompressedModelUpdate(CompressedModelUpdate {
                client_id: 0,
                weight: 1.0,
                base_task: 0,
                base_round: 0,
                delta: false,
                total_len: 4,
                index: SparseIndex::Dense,
                values: QuantValues::F32(vec![1.0, -2.5, 0.0, f32::MIN_POSITIVE]),
            }),
            WireMessage::CompressedModelUpdate(CompressedModelUpdate {
                client_id: 9,
                weight: 3.0,
                base_task: 0,
                base_round: 1,
                delta: true,
                total_len: 40,
                index: SparseIndex::Bitmap({
                    let mut bits = vec![0u8; 5];
                    for p in [0usize, 9, 17, 31, 39] {
                        bits[p / 8] |= 1 << (p % 8);
                    }
                    bits
                }),
                values: QuantValues::F16(vec![0x3c00, 0x8000, 0x7bff, 0x0001, 0xc000]),
            }),
        ]
    }

    #[test]
    fn exemplars_cover_every_kind() {
        let mut kinds: Vec<MessageKind> = exemplars().iter().map(WireMessage::kind).collect();
        kinds.sort_by_key(|k| *k as u16);
        kinds.dedup();
        assert_eq!(kinds, MessageKind::ALL.to_vec());
    }

    #[test]
    fn nested_frames_decode_recursively() {
        // A RoundStart's model field is itself a sealed frame; decoding the
        // outer envelope must hand back bytes the codec accepts verbatim.
        let inner = WireMessage::ModelBroadcast(ModelBroadcast {
            task: 2,
            round: 7,
            model: vec![4.0, -0.125],
        });
        let outer = WireMessage::RoundStart(RoundStart {
            task: 2,
            round: 7,
            model: inner.encode(),
            extra: None,
            sessions: Vec::new(),
        });
        let WireMessage::RoundStart(back) = WireMessage::decode(&outer.encode()).unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(WireMessage::decode(&back.model).unwrap(), inner);
    }

    #[test]
    fn every_exemplar_round_trips_bit_exactly() {
        for msg in exemplars() {
            let frame = msg.encode();
            assert_eq!(frame.len(), msg.encoded_len(), "{:?}", msg.kind());
            let back = WireMessage::decode(&frame).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(back.kind(), msg.kind());
        }
    }

    #[test]
    fn special_float_payloads_survive() {
        let msg = WireMessage::ModelBroadcast(ModelBroadcast {
            task: 0,
            round: 0,
            model: vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 0.0],
        });
        let WireMessage::ModelBroadcast(back) = WireMessage::decode(&msg.encode()).unwrap() else {
            panic!("wrong kind");
        };
        // Bit-exact comparison (NaN payloads included).
        let WireMessage::ModelBroadcast(orig) = msg else {
            unreachable!()
        };
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.model), bits(&orig.model));
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let mut frame = exemplars()[0].encode();
        frame[0] ^= 0xff;
        assert!(matches!(
            WireMessage::decode(&frame),
            Err(WireError::BadMagic { .. })
        ));
        let mut frame = exemplars()[0].encode();
        frame[4] = 0x7f;
        assert!(matches!(
            WireMessage::decode(&frame),
            Err(WireError::VersionMismatch { got: 0x7f, .. })
        ));
    }

    #[test]
    fn truncation_and_extension_are_detected() {
        let frame = exemplars()[0].encode();
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN, frame.len() - 1] {
            let err = WireMessage::decode(&frame[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::LengthMismatch { .. }
                ),
                "cut {cut}: {err}"
            );
        }
        let mut extended = frame.clone();
        extended.push(0);
        assert!(matches!(
            WireMessage::decode(&extended),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let mut frame = exemplars()[0].encode();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(
            WireMessage::decode(&frame),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn kind_flips_between_identical_layouts_are_caught() {
        // ClientModelUpdate and MaskedModelUpdate share a payload layout;
        // only the header-covering checksum tells them apart.
        let msg = WireMessage::ClientModelUpdate(ClientModelUpdate {
            client_id: 1,
            weight: 2.0,
            model: vec![3.0],
        });
        let mut frame = msg.encode();
        frame[6] = MessageKind::MaskedModelUpdate as u16 as u8;
        assert!(matches!(
            WireMessage::decode(&frame),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn compress_without_quant_or_topk_is_lossless() {
        // Dense f32 (even with delta off) must reconstruct bit-exactly.
        let flat = vec![0.5f32, -1.25, 3.0e-7, 42.0];
        let base = vec![0.0f32; 4];
        let spec = CompressionSpec {
            delta: false,
            quant: QuantMode::None,
            topk_fraction: 1.0,
        };
        let msg = CompressedModelUpdate::compress(&spec, None, 7, 2.0, &flat, &base, 0, 1);
        assert_eq!(msg.index, SparseIndex::Dense);
        let back = msg.reconstruct(&base).expect("reconstruct");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&flat));
    }

    #[test]
    fn delta_topk_reconstruction_keeps_base_for_dropped_coords() {
        let base = vec![1.0f32, 2.0, 3.0, 4.0];
        // Largest deltas at coords 1 (|2.0|) and 3 (|−1.5|).
        let flat = vec![1.1f32, 4.0, 3.05, 2.5];
        let spec = CompressionSpec {
            delta: true,
            quant: QuantMode::None,
            topk_fraction: 0.5,
        };
        let msg = CompressedModelUpdate::compress(&spec, None, 1, 1.0, &flat, &base, 0, 0);
        assert_eq!(msg.index.positions(4), vec![1, 3]);
        let back = msg.reconstruct(&base).expect("reconstruct");
        assert_eq!(back, vec![1.0, 4.0, 3.0, 2.5]);
    }

    #[test]
    fn mask_restricts_exchanged_coordinates() {
        let base = vec![0.0f32; 5];
        let flat = vec![10.0f32, 20.0, 30.0, 40.0, 50.0];
        let spec = CompressionSpec::identity();
        let msg = CompressedModelUpdate::compress(&spec, Some(&[1, 4]), 2, 1.0, &flat, &base, 0, 0);
        assert_eq!(msg.index.positions(5), vec![1, 4]);
        let back = msg.reconstruct(&base).expect("reconstruct");
        // Unmasked coordinates reconstruct to the base (broadcast) values.
        assert_eq!(back, vec![0.0, 20.0, 0.0, 0.0, 50.0]);
    }

    #[test]
    fn reconstruct_rejects_wrong_base_length() {
        let spec = CompressionSpec::identity();
        let msg = CompressedModelUpdate::compress(&spec, None, 0, 1.0, &[1.0; 3], &[0.0; 3], 0, 0);
        assert!(matches!(
            msg.reconstruct(&[0.0; 4]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn corrupt_sparse_payloads_are_typed_errors() {
        // An index list that is not ascending must decode to Malformed,
        // not panic — rebuild the frame so the checksum is valid.
        let msg = CompressedModelUpdate {
            client_id: 1,
            weight: 1.0,
            base_task: 0,
            base_round: 0,
            delta: false,
            total_len: 4,
            index: SparseIndex::List(vec![2, 1]),
            values: QuantValues::F32(vec![0.0, 1.0]),
        };
        assert!(matches!(
            WireMessage::decode(&WireMessage::CompressedModelUpdate(msg).encode()),
            Err(WireError::Malformed(_))
        ));
        // A bitmap whose popcount disagrees with the value count.
        let msg = CompressedModelUpdate {
            client_id: 1,
            weight: 1.0,
            base_task: 0,
            base_round: 0,
            delta: false,
            total_len: 8,
            index: SparseIndex::Bitmap(vec![0b0000_0011]),
            values: QuantValues::F32(vec![0.0]),
        };
        assert!(matches!(
            WireMessage::decode(&WireMessage::CompressedModelUpdate(msg).encode()),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn uncompressed_frame_len_matches_plain_update() {
        let spec = CompressionSpec {
            delta: true,
            quant: QuantMode::Int8,
            topk_fraction: 0.25,
        };
        let flat = vec![0.5f32; 100];
        let base = vec![0.0f32; 100];
        let msg = CompressedModelUpdate::compress(&spec, None, 3, 2.0, &flat, &base, 0, 0);
        let plain = WireMessage::ClientModelUpdate(ClientModelUpdate {
            client_id: 3,
            weight: 2.0,
            model: flat,
        });
        assert_eq!(msg.uncompressed_frame_len(), plain.encoded_len());
        // And the compressed frame is genuinely smaller.
        let encoded = WireMessage::CompressedModelUpdate(msg).encode();
        assert!(encoded.len() * 4 < plain.encoded_len());
    }
}
