//! # refil-wire
//!
//! The typed wire layer: every client↔server exchange in the federation is
//! encoded through the versioned binary codec defined here and moved as a
//! framed byte buffer over a peer-addressed [`Link`]. This replaces the
//! simulation's former pass-by-clone plumbing (and its back-of-envelope
//! byte estimates) with a real, measured wire format, so communication
//! accounting reports exactly what an implementation would put on the
//! network — and, since the socket transports ([`NetListener`] /
//! [`connect`]) carry the very same frames, what a networked run *does*
//! put on it.
//!
//! ## Frame layout
//!
//! Every message is one frame: a 16-byte header followed by the payload,
//! all little-endian.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RFWL"
//! 4       2     schema version (u16, currently 3)
//! 6       2     message kind (u16, see MessageKind)
//! 8       4     payload length (u32)
//! 12      4     CRC32 over header bytes 0..12 ++ payload
//! 16      n     payload (message-kind-specific, little-endian)
//! ```
//!
//! The checksum covers the header prefix as well as the payload, so a
//! single corrupted byte anywhere in a frame is always detected: either a
//! field-specific error (bad magic, version mismatch, unknown kind, length
//! mismatch) or a checksum failure. Decoding never panics — every failure
//! is a typed [`WireError`].
//!
//! ## Message catalog
//!
//! | kind | message | direction | carries |
//! |------|---------|-----------|---------|
//! | 1 | [`ModelBroadcast`] | server → client | global model parameters |
//! | 2 | [`ClientModelUpdate`] | client → server | locally trained parameters + FedAvg weight |
//! | 3 | [`PromptUpload`] | client → server | class-wise Local Prompt Groups (RefFiL Eq. 2–3) |
//! | 4 | [`GlobalPromptBroadcast`] | server → client | post-FINCH prompt representatives + generalized prompt |
//! | 5 | [`MaskedModelUpdate`] | client → server | secure-aggregation masked parameters |
//! | 6 | [`RehearsalMemory`] | client → client (via server) | episodic-memory samples (rehearsal oracle only) |
//! | 7 | [`Hello`] | client → server | connection handshake (client nonce, optional resume token) |
//! | 8 | [`Welcome`] | server → client | assigned peer id + resume token + run spec string |
//! | 9 | [`RoundStart`] | server → client | nested broadcast frames + session assignments |
//! | 10 | [`SessionResult`] | client → server | nested update/merge frames for one session |
//! | 11 | [`RoundSync`] | server → client | post-aggregate global model + ordered merge frames |
//! | 12 | [`TaskBegin`] | server → client | task-start marker + global model |
//! | 13 | [`TaskEnd`] | server → client | task-end marker + global model |
//! | 14 | [`RunEnd`] | either | run / participation termination |
//! | 15 | [`CompressedModelUpdate`] | client → server | delta/top-k/quantized parameters + FedAvg weight |
//!
//! Kinds 1–6 and 15 are the *payload* exchanges whose sizes define the
//! paper's communication accounting; kinds 7–14 are the *control* protocol
//! the networked server speaks, and they carry payload exchanges as nested
//! encoded frames so accounting stays byte-identical to the loopback run.
//!
//! ## Compression
//!
//! [`CompressedModelUpdate`] is the communication-efficient replacement for
//! [`ClientModelUpdate`]: the client composes delta encoding (against the
//! last [`ModelBroadcast`] it applied), top-k sparsification, and f16/int8
//! quantization — in that order — according to the [`CompressionSpec`] the
//! server assigned in [`Welcome`]. The frame is self-describing: the server
//! reconstructs it with nothing but the matching broadcast from its own
//! history (keyed by the `base_task`/`base_round` tag the client echoes
//! back). Old clients advertise codec revision 0 in [`Hello`] and are never
//! sent a spec, so mixed fleets interoperate. See [`compress`]'s module docs
//! for the deterministic rounding rules and reconstruction-error contracts.
//!
//! `f32` values are encoded as their IEEE-754 little-endian bit patterns,
//! so an encode→decode round trip is bit-exact and a loopback-transported
//! run is byte-identical to an in-memory one.
//!
//! ## Versioning rules
//!
//! The schema version is bumped whenever a payload layout changes; decoders
//! accept exactly their own version and return
//! [`WireError::VersionMismatch`] otherwise. New message kinds may be added
//! without a version bump (old decoders report [`WireError::UnknownKind`]);
//! changing an existing payload requires one.
//!
//! # Examples
//!
//! ```
//! use refil_wire::{Link, Loopback, ModelBroadcast, WireMessage};
//! use std::time::{Duration, Instant};
//!
//! let msg = WireMessage::ModelBroadcast(ModelBroadcast {
//!     task: 0,
//!     round: 3,
//!     model: vec![1.0, -2.5, 3.25],
//! });
//! let frame = msg.encode();
//! assert_eq!(frame.len(), msg.encoded_len());
//!
//! let link = Loopback::new();
//! link.send(&frame).unwrap();
//! let deadline = Instant::now() + Duration::from_secs(1);
//! let received = link.recv_deadline(deadline).expect("frame queued");
//! assert_eq!(WireMessage::decode(&received).unwrap(), msg);
//! ```

#![warn(missing_docs)]

pub mod compress;
mod frame;
mod link;
mod message;
mod net;
mod poll;

pub use compress::{CompressionSpec, QuantMode, QuantValues, SparseIndex, CODEC_REVISION};
pub use frame::{crc32, MessageKind, WireError, HEADER_LEN, MAGIC, SCHEMA_VERSION};
pub use link::{ConnectError, Link, Listener, Loopback, PeerId, RecvError, SERVER_PEER};
pub use message::{
    ClientModelUpdate, CompressedModelUpdate, GlobalPromptBroadcast, Hello, MaskedModelUpdate,
    ModelBroadcast, PromptGroup, PromptUpload, RehearsalMemory, Resume, RoundStart, RoundSync,
    RunEnd, SessionAssignment, SessionResult, TaskBegin, TaskEnd, Welcome, WireMessage, WireSample,
};
pub use net::{connect, Endpoint, NetLink, NetListener, MAX_FRAME_LEN};
pub use poll::{Interest, PollSet};

#[cfg(test)]
mod proptests;
