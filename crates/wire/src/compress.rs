//! Payload compression codecs for [`crate::CompressedModelUpdate`]: delta
//! encoding against a broadcast base, f16/int8 quantization, and top-k
//! sparsification, composed in the fixed order **delta → top-k → quant**.
//!
//! Every stage is deterministic: quantization rounds to nearest, ties to
//! even; top-k breaks magnitude ties by ascending index; the sparse index
//! representation is chosen by a pure size comparison. Two peers compressing
//! the same parameters against the same base therefore produce identical
//! frames, which is what lets the networked path stay byte-identical to the
//! loopback path under every [`CompressionSpec`].
//!
//! # Reconstruction-error contracts
//!
//! Checked by proptests in `crates/wire/src/proptests.rs`, in the spirit of
//! the fast-kernel bounds in `crates/nn/src/gemm_fast.rs`:
//!
//! ```text
//! f16:  |x − dec(enc(x))| ≤ max(|x| · 2⁻¹¹, 2⁻²⁵)     for |x| ≤ 65504
//!       (finite overflow saturates to ±65504)
//! int8: |x − dec(enc(x))| ≤ scale/2 + (|x| + scale) · 2⁻²⁰
//!       with scale = (max − min)/255, zero_point = min, over the values
//!       actually encoded together (one tensor = one affine grid); the
//!       (|x| + scale)·2⁻²⁰ term absorbs the final f64→f32 cast
//! ```
//!
//! `QuantMode::None` and a dense index are bit-exact: `f32` values ride the
//! wire verbatim.

use std::fmt;

use crate::frame::{bytes_len, Reader, WireError, Writer};

/// Compression codec revision a client advertises in [`crate::Hello`].
/// Revision 0 is the legacy protocol (no [`crate::CompressedModelUpdate`]
/// support); revision 1 adds the delta/top-k/quant codecs in this module.
/// The server never assigns a spec to a peer that advertised revision 0.
pub const CODEC_REVISION: u8 = 1;

/// Scalar codec applied to the values that survive delta + top-k.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum QuantMode {
    /// Values ride as raw `f32` — bit-exact.
    #[default]
    None = 0,
    /// IEEE binary16 with round-to-nearest-even; finite overflow saturates
    /// to ±65504.
    F16 = 1,
    /// Asymmetric affine u8: `code = rne((x − zero_point)/scale)` with
    /// `zero_point = min`, `scale = (max − min)/255` over the encoded values.
    Int8 = 2,
}

impl QuantMode {
    fn from_wire(raw: u8) -> Result<Self, WireError> {
        match raw {
            0 => Ok(Self::None),
            1 => Ok(Self::F16),
            2 => Ok(Self::Int8),
            _ => Err(WireError::Malformed("unknown quant mode")),
        }
    }
}

/// One peer's negotiated compression configuration: what the client applies
/// to its uplink [`crate::CompressedModelUpdate`]s and the server undoes
/// against its broadcast history.
///
/// The identity spec `{delta: false, quant: None, topk_fraction: 1.0}` is
/// *inactive* ([`CompressionSpec::is_active`] is false): runs configured with
/// it take the plain [`crate::ClientModelUpdate`] path and are byte-identical
/// to an uncompressed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionSpec {
    /// Send `x − base` instead of `x`, against the round's broadcast.
    pub delta: bool,
    /// Scalar codec for the surviving values.
    pub quant: QuantMode,
    /// Fraction of candidate coordinates kept by top-k (by magnitude,
    /// ties broken by ascending index). Must be in `(0, 1]`; `1.0` keeps
    /// every coordinate.
    pub topk_fraction: f32,
}

impl Default for CompressionSpec {
    fn default() -> Self {
        Self::identity()
    }
}

impl CompressionSpec {
    /// Encoded size of a spec inside a frame payload.
    pub(crate) const WIRE_LEN: usize = 6;

    /// The inactive spec: no delta, no quantization, keep everything.
    pub fn identity() -> Self {
        Self {
            delta: false,
            quant: QuantMode::None,
            topk_fraction: 1.0,
        }
    }

    /// Whether this spec changes any payload. Inactive specs route through
    /// the plain uncompressed path.
    pub fn is_active(&self) -> bool {
        self.delta || self.quant != QuantMode::None || self.topk_fraction < 1.0
    }

    /// Structural validity: `topk_fraction` finite and in `(0, 1]`.
    pub fn is_valid(&self) -> bool {
        self.topk_fraction.is_finite() && self.topk_fraction > 0.0 && self.topk_fraction <= 1.0
    }

    pub(crate) fn write(&self, w: &mut Writer) {
        w.u8(u8::from(self.delta));
        w.u8(self.quant as u8);
        w.f32(self.topk_fraction);
    }

    pub(crate) fn read(r: &mut Reader, what: &'static str) -> Result<Self, WireError> {
        let delta = match r.u8(what)? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Malformed("bad delta flag")),
        };
        let quant = QuantMode::from_wire(r.u8(what)?)?;
        let topk_fraction = r.f32(what)?;
        let spec = Self {
            delta,
            quant,
            topk_fraction,
        };
        if !spec.is_valid() {
            return Err(WireError::Malformed("topk fraction out of range"));
        }
        Ok(spec)
    }
}

impl fmt::Display for CompressionSpec {
    /// Compact human label, e.g. `delta+int8+topk0.25` or `identity`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_active() {
            return write!(f, "identity");
        }
        let mut sep = "";
        if self.delta {
            write!(f, "delta")?;
            sep = "+";
        }
        match self.quant {
            QuantMode::None => {}
            QuantMode::F16 => {
                write!(f, "{sep}f16")?;
                sep = "+";
            }
            QuantMode::Int8 => {
                write!(f, "{sep}int8")?;
                sep = "+";
            }
        }
        if self.topk_fraction < 1.0 {
            write!(f, "{sep}topk{}", self.topk_fraction)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// f16 codec
// ---------------------------------------------------------------------------

/// Drops the low `shift` bits of `m` with round-to-nearest, ties to even.
fn round_shift_rne(m: u32, shift: u32) -> u32 {
    debug_assert!((1..=24).contains(&shift));
    let keep = m >> shift;
    let rem = m & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    if rem > half || (rem == half && keep & 1 == 1) {
        keep + 1
    } else {
        keep
    }
}

/// `f32` → IEEE binary16 bits, round-to-nearest-even. Finite values whose
/// rounded magnitude would overflow f16 saturate to ±65504 (so a dequantized
/// model never contains infinities); NaN maps to the canonical quiet NaN.
pub fn f16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Infinity saturates like finite overflow; NaN stays NaN.
        return if man != 0 {
            sign | 0x7e00
        } else {
            sign | 0x7bff
        };
    }
    let e = exp - 127 + 15; // f16-biased exponent
    if e >= 0x1f {
        return sign | 0x7bff;
    }
    if e <= 0 {
        if e < -10 {
            return sign; // underflows to ±0 even after rounding
        }
        // Subnormal result: shift the 24-bit significand (implicit bit set)
        // down into the 10-bit field. A round-up to 0x400 lands exactly on
        // the smallest normal encoding.
        let man24 = man | 0x0080_0000;
        return sign | round_shift_rne(man24, (14 - e) as u32) as u16;
    }
    // Normal result: mantissa rounds from 23 to 10 bits; a carry out of the
    // mantissa propagates into the exponent by construction.
    let half = ((e as u32) << 10) + round_shift_rne(man, 13);
    if half >= 0x7c00 {
        return sign | 0x7bff; // rounded up past the largest finite half
    }
    sign | half as u16
}

/// IEEE binary16 bits → `f32`. Exact: every f16 value is representable.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1f;
    let man = u32::from(h & 0x3ff);
    if exp == 0 {
        // ±0 and subnormals: magnitude is man · 2⁻²⁴, exactly representable.
        let mag = man as f32 / 16_777_216.0;
        return if sign != 0 { -mag } else { mag };
    }
    if exp == 0x1f {
        let bits = sign | 0x7f80_0000 | (man << 13);
        return f32::from_bits(bits);
    }
    f32::from_bits(sign | ((exp + 127 - 15) << 23) | (man << 13))
}

// ---------------------------------------------------------------------------
// int8 affine codec
// ---------------------------------------------------------------------------

/// Round-to-nearest-even in f64 (bit-stable across platforms; `f64::round`
/// rounds ties away from zero, so it is not used here).
fn rne_f64(x: f64) -> f64 {
    let f = x.floor();
    let diff = x - f;
    let round_up = if diff == 0.5 {
        (f * 0.5).fract() != 0.0 // tie: round up only when the floor is odd
    } else {
        diff > 0.5
    };
    if round_up {
        f + 1.0
    } else {
        f
    }
}

/// Quantizes `values` onto a 256-point affine grid spanning their range.
/// Returns `(zero_point, scale, codes)` with `zero_point = min` and
/// `scale = (max − min)/255` (both stored as f32, so both ends decode the
/// same grid). A constant input gets `scale = 0` and decodes exactly.
pub fn int8_quantize(values: &[f32]) -> (f32, f32, Vec<u8>) {
    if values.is_empty() {
        return (0.0, 0.0, Vec::new());
    }
    let mut lo = values[0];
    let mut hi = values[0];
    for &v in &values[1..] {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let scale = ((f64::from(hi) - f64::from(lo)) / 255.0) as f32;
    let codes = values
        .iter()
        .map(|&v| {
            if scale == 0.0 {
                return 0u8;
            }
            let t = (f64::from(v) - f64::from(lo)) / f64::from(scale);
            rne_f64(t).clamp(0.0, 255.0) as u8
        })
        .collect();
    (lo, scale, codes)
}

/// Decodes one affine code: `zero_point + code · scale`, evaluated in f64
/// so both rounding steps are shared by every decoder.
pub fn int8_dequantize_one(zero_point: f32, scale: f32, code: u8) -> f32 {
    (f64::from(zero_point) + f64::from(code) * f64::from(scale)) as f32
}

// ---------------------------------------------------------------------------
// top-k selection
// ---------------------------------------------------------------------------

/// Positions (into `values`) of the `k` largest-magnitude entries, returned
/// in ascending position order. Ties on magnitude keep the lower position —
/// the deterministic tie-break that makes two identical uplinks identical.
pub fn topk_positions(values: &[f32], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_unstable_by(|&a, &b| values[b].abs().total_cmp(&values[a].abs()).then(a.cmp(&b)));
    order.truncate(k.min(values.len()));
    order.sort_unstable();
    order
}

/// `k = ceil(fraction · n)`, at least 1 for a non-empty input.
pub fn topk_count(fraction: f32, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let k = (f64::from(fraction) * n as f64).ceil() as usize;
    k.clamp(1, n)
}

// ---------------------------------------------------------------------------
// sparse index + values containers (the payload of CompressedModelUpdate)
// ---------------------------------------------------------------------------

/// Which coordinates of the flat parameter vector a compressed update
/// carries. The encoder picks [`SparseIndex::Bitmap`] or
/// [`SparseIndex::List`] by a pure size comparison (bitmap when strictly
/// smaller), so the choice is deterministic in `(total_len, k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseIndex {
    /// Every coordinate `0..total_len`, ascending.
    Dense,
    /// One bit per coordinate, LSB-first within each byte; a set bit means
    /// the coordinate is present. Trailing pad bits must be zero.
    Bitmap(Vec<u8>),
    /// Strictly ascending coordinate list.
    List(Vec<u32>),
}

impl SparseIndex {
    /// Builds the smaller of bitmap/list for `positions` (ascending, unique,
    /// all `< total_len`); dense when every coordinate is present.
    pub fn for_positions(positions: &[usize], total_len: usize) -> Self {
        if positions.len() == total_len {
            return Self::Dense;
        }
        let bitmap_bytes = total_len.div_ceil(8);
        if bitmap_bytes < positions.len() * 4 {
            let mut bits = vec![0u8; bitmap_bytes];
            for &p in positions {
                bits[p / 8] |= 1 << (p % 8);
            }
            Self::Bitmap(bits)
        } else {
            Self::List(positions.iter().map(|&p| p as u32).collect())
        }
    }

    /// Number of coordinates this index selects.
    pub fn count(&self, total_len: usize) -> usize {
        match self {
            Self::Dense => total_len,
            Self::Bitmap(bits) => bits.iter().map(|b| b.count_ones() as usize).sum(),
            Self::List(idx) => idx.len(),
        }
    }

    /// Ascending selected coordinates.
    pub fn positions(&self, total_len: usize) -> Vec<usize> {
        match self {
            Self::Dense => (0..total_len).collect(),
            Self::Bitmap(bits) => {
                let mut out = Vec::new();
                for (byte_i, &b) in bits.iter().enumerate() {
                    let mut rest = b;
                    while rest != 0 {
                        let bit = rest.trailing_zeros() as usize;
                        out.push(byte_i * 8 + bit);
                        rest &= rest - 1;
                    }
                }
                out
            }
            Self::List(idx) => idx.iter().map(|&i| i as usize).collect(),
        }
    }

    pub(crate) fn encoded_len(&self) -> usize {
        1 + match self {
            Self::Dense => 0,
            Self::Bitmap(bits) => bytes_len(bits),
            Self::List(idx) => 4 + idx.len() * 4,
        }
    }

    pub(crate) fn write(&self, w: &mut Writer) {
        match self {
            Self::Dense => w.u8(0),
            Self::Bitmap(bits) => {
                w.u8(1);
                w.bytes(bits);
            }
            Self::List(idx) => {
                w.u8(2);
                w.u32s(idx);
            }
        }
    }

    pub(crate) fn read(
        r: &mut Reader,
        total_len: usize,
        what: &'static str,
    ) -> Result<Self, WireError> {
        match r.u8(what)? {
            0 => Ok(Self::Dense),
            1 => {
                let bits = r.bytes(what)?;
                if bits.len() != total_len.div_ceil(8) {
                    return Err(WireError::Malformed("bitmap length mismatch"));
                }
                // Pad bits past total_len must be zero so equal selections
                // have equal encodings.
                let pad = bits.len() * 8 - total_len;
                if pad > 0 && bits.last().is_some_and(|&b| b >> (8 - pad) != 0) {
                    return Err(WireError::Malformed("bitmap pad bits set"));
                }
                Ok(Self::Bitmap(bits))
            }
            2 => {
                let idx = r.u32s(what)?;
                let ascending = idx.windows(2).all(|w| w[0] < w[1]);
                if !ascending || idx.last().is_some_and(|&i| i as usize >= total_len) {
                    return Err(WireError::Malformed("index list not ascending in range"));
                }
                Ok(Self::List(idx))
            }
            _ => Err(WireError::Malformed("unknown sparse index tag")),
        }
    }
}

/// The quantized values of a compressed update, one entry per selected
/// coordinate in ascending coordinate order.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantValues {
    /// Raw f32 — bit-exact.
    F32(Vec<f32>),
    /// IEEE binary16 bit patterns.
    F16(Vec<u16>),
    /// Affine u8 codes with the shared grid parameters.
    Int8 {
        /// Grid origin (the minimum of the encoded values).
        zero_point: f32,
        /// Grid step, `(max − min)/255`; zero for a constant input.
        scale: f32,
        /// One code per value.
        codes: Vec<u8>,
    },
}

impl QuantValues {
    /// Encodes `values` under `mode`.
    pub fn quantize(mode: QuantMode, values: &[f32]) -> Self {
        match mode {
            QuantMode::None => Self::F32(values.to_vec()),
            QuantMode::F16 => Self::F16(values.iter().map(|&v| f16_from_f32(v)).collect()),
            QuantMode::Int8 => {
                let (zero_point, scale, codes) = int8_quantize(values);
                Self::Int8 {
                    zero_point,
                    scale,
                    codes,
                }
            }
        }
    }

    /// Decodes back to f32, one value per entry.
    pub fn dequantize(&self) -> Vec<f32> {
        match self {
            Self::F32(v) => v.clone(),
            Self::F16(bits) => bits.iter().map(|&b| f16_to_f32(b)).collect(),
            Self::Int8 {
                zero_point,
                scale,
                codes,
            } => codes
                .iter()
                .map(|&c| int8_dequantize_one(*zero_point, *scale, c))
                .collect(),
        }
    }

    /// Number of values carried.
    pub fn len(&self) -> usize {
        match self {
            Self::F32(v) => v.len(),
            Self::F16(v) => v.len(),
            Self::Int8 { codes, .. } => codes.len(),
        }
    }

    /// True when no values are carried.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn encoded_len(&self) -> usize {
        1 + match self {
            Self::F32(v) => 4 + v.len() * 4,
            Self::F16(v) => 4 + v.len() * 2,
            Self::Int8 { codes, .. } => 8 + bytes_len(codes),
        }
    }

    pub(crate) fn write(&self, w: &mut Writer) {
        match self {
            Self::F32(v) => {
                w.u8(0);
                w.f32s(v);
            }
            Self::F16(v) => {
                w.u8(1);
                w.u16s(v);
            }
            Self::Int8 {
                zero_point,
                scale,
                codes,
            } => {
                w.u8(2);
                w.f32(*zero_point);
                w.f32(*scale);
                w.bytes(codes);
            }
        }
    }

    pub(crate) fn read(r: &mut Reader, what: &'static str) -> Result<Self, WireError> {
        match r.u8(what)? {
            0 => Ok(Self::F32(r.f32s(what)?)),
            1 => Ok(Self::F16(r.u16s(what)?)),
            2 => {
                let zero_point = r.f32(what)?;
                let scale = r.f32(what)?;
                let codes = r.bytes(what)?;
                Ok(Self::Int8 {
                    zero_point,
                    scale,
                    codes,
                })
            }
            _ => Err(WireError::Malformed("unknown quant values tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_known_vectors() {
        for (x, bits) in [
            (0.0f32, 0x0000u16),
            (1.0, 0x3c00),
            (-2.0, 0xc000),
            (0.5, 0x3800),
            (65504.0, 0x7bff),
            (65536.0, 0x7bff),  // saturates
            (-1e30, 0xfbff),    // saturates negative
            (6.1e-5, 0x03ff),   // just below the smallest normal: largest subnormal
            (6.104e-5, 0x0400), // rounds up to the smallest normal
            (5.96e-8, 0x0001),  // smallest subnormal
            (1e-9, 0x0000),     // underflows to zero
        ] {
            assert_eq!(f16_from_f32(x), bits, "encoding {x}");
        }
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0xc000), -2.0);
        assert_eq!(f16_to_f32(0x7bff), 65504.0);
        assert_eq!(f16_to_f32(0x0001), 2f32.powi(-24));
        assert!(f16_to_f32(f16_from_f32(f32::NAN)).is_nan());
        assert_eq!(f16_to_f32(f16_from_f32(f32::INFINITY)), 65504.0);
    }

    #[test]
    fn f16_round_trip_is_idempotent() {
        // Re-encoding a decoded value must reproduce the same bits: the
        // decoded grid is a fixed point of the codec.
        for bits in [0x0000u16, 0x0001, 0x03ff, 0x0400, 0x3c01, 0x7bff, 0x8001] {
            assert_eq!(f16_from_f32(f16_to_f32(bits)), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn f16_ties_round_to_even() {
        // 1 + 2⁻¹¹ is exactly halfway between 1.0 (mantissa 0, even) and
        // the next half up (mantissa 1, odd): RNE keeps 1.0.
        let tie = 1.0 + 2f32.powi(-11);
        assert_eq!(f16_from_f32(tie), 0x3c00);
        // 1 + 3·2⁻¹¹ is halfway between mantissa 1 and 2: RNE picks 2.
        let tie2 = 1.0 + 3.0 * 2f32.powi(-11);
        assert_eq!(f16_from_f32(tie2), 0x3c02);
    }

    #[test]
    fn int8_constant_input_is_exact() {
        let (zp, scale, codes) = int8_quantize(&[0.75; 9]);
        assert_eq!(zp, 0.75);
        assert_eq!(scale, 0.0);
        assert!(codes.iter().all(|&c| c == 0));
        assert_eq!(int8_dequantize_one(zp, scale, 0), 0.75);
    }

    #[test]
    fn int8_endpoints_are_near_exact_and_ties_go_even() {
        let (zp, scale, codes) = int8_quantize(&[-1.0, 1.0]);
        assert_eq!(zp, -1.0);
        assert_eq!(codes, vec![0, 255]);
        let hi = int8_dequantize_one(zp, scale, 255);
        assert!((hi - 1.0).abs() <= 1e-5, "top of grid {hi}");
        // Halfway between codes 0 and 1 (both grids even/odd): ties to even.
        assert_eq!(rne_f64(0.5), 0.0);
        assert_eq!(rne_f64(1.5), 2.0);
        assert_eq!(rne_f64(2.5), 2.0);
        assert_eq!(rne_f64(-0.5), 0.0);
    }

    #[test]
    fn topk_breaks_magnitude_ties_by_ascending_index() {
        // Equal magnitudes everywhere: the kept set must be the lowest
        // indices, in order.
        let v = [0.5f32, -0.5, 0.5, -0.5, 0.5];
        assert_eq!(topk_positions(&v, 3), vec![0, 1, 2]);
        // Mixed: ties at |0.5| (indices 1, 3) resolve to index 1.
        let v = [0.1f32, 0.5, 0.9, -0.5];
        assert_eq!(topk_positions(&v, 2), vec![1, 2]);
    }

    #[test]
    fn topk_count_ceils_and_clamps() {
        assert_eq!(topk_count(0.25, 10), 3); // ceil(2.5)
        assert_eq!(topk_count(1.0, 10), 10);
        assert_eq!(topk_count(0.001, 10), 1);
        assert_eq!(topk_count(0.5, 0), 0);
    }

    #[test]
    fn sparse_index_picks_the_smaller_encoding() {
        // 64 coords, 2 selected: list (8 bytes) equals bitmap (8 bytes) —
        // the list wins ties.
        let idx = SparseIndex::for_positions(&[3, 40], 64);
        assert!(matches!(idx, SparseIndex::List(_)));
        // 64 coords, 3 selected: bitmap (8 bytes) < list (12 bytes).
        let idx = SparseIndex::for_positions(&[3, 40, 63], 64);
        assert!(matches!(idx, SparseIndex::Bitmap(_)));
        assert_eq!(idx.positions(64), vec![3, 40, 63]);
        assert_eq!(idx.count(64), 3);
        // Full selection is dense.
        let all: Vec<usize> = (0..5).collect();
        assert_eq!(SparseIndex::for_positions(&all, 5), SparseIndex::Dense);
    }

    #[test]
    fn spec_display_and_activity() {
        assert!(!CompressionSpec::identity().is_active());
        assert_eq!(CompressionSpec::identity().to_string(), "identity");
        let spec = CompressionSpec {
            delta: true,
            quant: QuantMode::Int8,
            topk_fraction: 0.25,
        };
        assert!(spec.is_active());
        assert_eq!(spec.to_string(), "delta+int8+topk0.25");
        assert!(!CompressionSpec {
            topk_fraction: 0.0,
            ..CompressionSpec::identity()
        }
        .is_valid());
        assert!(!CompressionSpec {
            topk_fraction: f32::NAN,
            ..CompressionSpec::identity()
        }
        .is_valid());
    }
}
