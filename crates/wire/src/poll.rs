//! Readiness polling over raw file descriptors: the [`PollSet`] a
//! single-threaded federation reactor blocks on.
//!
//! On Unix this wraps `poll(2)` directly (declared here, no external
//! crate), so one thread sleeps in the kernel until any of hundreds of
//! sockets becomes readable or writable. Sources without a file
//! descriptor (in-memory [`crate::Loopback`] links, non-Unix platforms)
//! degrade to a bounded-sleep fallback: the wait is capped to a short
//! slice and every fd-less source is reported maybe-ready. Readiness is
//! therefore a *hint*, never a promise — callers must tolerate an empty
//! non-blocking read after a wake-up, which the `try_*` methods on
//! [`crate::Link`] already do.

use std::time::Duration;

/// Readiness interest for one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Wake when the source becomes readable.
    Read,
    /// Wake when the source becomes writable.
    Write,
    /// Wake on either direction.
    ReadWrite,
}

/// How long [`PollSet::wait`] sleeps per slice when at least one
/// registered source has no file descriptor to poll. Keeps the fallback
/// path responsive without spinning.
const FALLBACK_SLICE: Duration = Duration::from_millis(2);

#[cfg(unix)]
mod sys {
    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    #[cfg(target_os = "linux")]
    pub type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type NFds = std::os::raw::c_uint;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
    }
}

struct Entry {
    token: u64,
    fd: Option<i32>,
    interest: Interest,
}

/// A reusable readiness set: register `(token, fd, interest)` triples,
/// then [`PollSet::wait`] for the tokens that are (maybe) ready.
///
/// Registrations persist across waits; [`PollSet::clear`] resets the set
/// so a reactor can rebuild it each tick from its live peer registry.
#[derive(Default)]
pub struct PollSet {
    entries: Vec<Entry>,
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
}

impl PollSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes every registered source.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Registers one source. `fd: None` marks a source that cannot be
    /// polled by the OS; its presence caps the wait to a short slice and
    /// it is always reported maybe-ready.
    pub fn register(&mut self, token: u64, fd: Option<i32>, interest: Interest) {
        self.entries.push(Entry {
            token,
            fd,
            interest,
        });
    }

    /// Registered sources.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no source is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Blocks until at least one source is ready or `timeout` passes,
    /// appending the (maybe-)ready tokens to `ready`. Returns the number
    /// of tokens appended; zero means the timeout elapsed with nothing to
    /// do. Tokens of fd-less sources are always appended.
    pub fn wait(&mut self, timeout: Duration, ready: &mut Vec<u64>) -> usize {
        let before = ready.len();
        let fallback = self.entries.iter().any(|e| e.fd.is_none());
        let budget = if fallback {
            timeout.min(FALLBACK_SLICE)
        } else {
            timeout
        };
        self.wait_fds(budget, ready);
        if fallback {
            ready.extend(
                self.entries
                    .iter()
                    .filter(|e| e.fd.is_none())
                    .map(|e| e.token),
            );
        }
        ready.len() - before
    }

    #[cfg(unix)]
    fn wait_fds(&mut self, timeout: Duration, ready: &mut Vec<u64>) {
        self.fds.clear();
        for e in &self.entries {
            let Some(fd) = e.fd else { continue };
            let events = match e.interest {
                Interest::Read => sys::POLLIN,
                Interest::Write => sys::POLLOUT,
                Interest::ReadWrite => sys::POLLIN | sys::POLLOUT,
            };
            self.fds.push(sys::PollFd {
                fd,
                events,
                revents: 0,
            });
        }
        if self.fds.is_empty() {
            if !timeout.is_zero() {
                std::thread::sleep(timeout);
            }
            return;
        }
        // Round a sub-millisecond budget up to 1ms: poll(0) would turn the
        // caller's wait loop into a spin.
        let ms = if timeout.is_zero() {
            0
        } else {
            i32::try_from(timeout.as_millis().max(1)).unwrap_or(i32::MAX)
        };
        let n = loop {
            // SAFETY: `fds` is a live, correctly sized array of repr(C)
            // pollfd entries for the duration of the call.
            let rc = unsafe { sys::poll(self.fds.as_mut_ptr(), self.fds.len() as sys::NFds, ms) };
            if rc >= 0 {
                break rc;
            }
            if std::io::Error::last_os_error().kind() != std::io::ErrorKind::Interrupted {
                // Poll failure (EBADF etc.): report every polled source as
                // maybe-ready so the caller's reads surface the real error.
                ready.extend(
                    self.entries
                        .iter()
                        .filter(|e| e.fd.is_some())
                        .map(|e| e.token),
                );
                return;
            }
        };
        if n == 0 {
            return;
        }
        let mut at = 0;
        for e in &self.entries {
            if e.fd.is_none() {
                continue;
            }
            // `revents` may include error/hup flags beyond what was asked
            // for; any non-zero value means "attend to this source".
            if self.fds[at].revents != 0 {
                ready.push(e.token);
            }
            at += 1;
        }
    }

    #[cfg(not(unix))]
    fn wait_fds(&mut self, timeout: Duration, ready: &mut Vec<u64>) {
        // No portable sub-process readiness API without external crates:
        // treat every source as maybe-ready after a bounded sleep.
        if !timeout.is_zero() {
            std::thread::sleep(timeout.min(FALLBACK_SLICE));
        }
        ready.extend(self.entries.iter().filter_map(|e| e.fd.map(|_| e.token)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn empty_set_sleeps_out_the_timeout() {
        let mut set = PollSet::new();
        let mut ready = Vec::new();
        let start = Instant::now();
        let n = set.wait(Duration::from_millis(40), &mut ready);
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn fdless_sources_are_always_maybe_ready_and_wait_is_capped() {
        let mut set = PollSet::new();
        set.register(7, None, Interest::Read);
        set.register(9, None, Interest::Read);
        let mut ready = Vec::new();
        let start = Instant::now();
        let n = set.wait(Duration::from_secs(5), &mut ready);
        assert_eq!(n, 2);
        assert_eq!(ready, vec![7, 9]);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "fallback wait must be capped to a short slice"
        );
    }

    #[cfg(unix)]
    mod unix {
        use super::*;
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;

        fn pair() -> (TcpStream, TcpStream) {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let tx = TcpStream::connect(addr).unwrap();
            let (rx, _) = listener.accept().unwrap();
            (tx, rx)
        }

        #[test]
        fn idle_socket_times_out_then_becomes_readable() {
            let (mut tx, rx) = pair();
            let mut set = PollSet::new();
            set.register(1, Some(rx.as_raw_fd()), Interest::Read);
            let mut ready = Vec::new();
            let start = Instant::now();
            assert_eq!(set.wait(Duration::from_millis(60), &mut ready), 0);
            assert!(start.elapsed() >= Duration::from_millis(40));
            tx.write_all(&[1, 2, 3]).unwrap();
            tx.flush().unwrap();
            assert_eq!(set.wait(Duration::from_secs(5), &mut ready), 1);
            assert_eq!(ready, vec![1]);
        }

        #[test]
        fn write_interest_on_a_fresh_socket_is_immediate() {
            let (tx, _rx) = pair();
            let mut set = PollSet::new();
            set.register(3, Some(tx.as_raw_fd()), Interest::Write);
            let mut ready = Vec::new();
            assert_eq!(set.wait(Duration::from_secs(5), &mut ready), 1);
            assert_eq!(ready, vec![3]);
        }

        #[test]
        fn only_the_readable_socket_wakes_among_many() {
            let mut pairs: Vec<_> = (0..8).map(|_| pair()).collect();
            let mut set = PollSet::new();
            for (i, (_tx, rx)) in pairs.iter().enumerate() {
                set.register(i as u64, Some(rx.as_raw_fd()), Interest::Read);
            }
            pairs[5].0.write_all(&[9]).unwrap();
            let mut ready = Vec::new();
            assert_eq!(set.wait(Duration::from_secs(5), &mut ready), 1);
            assert_eq!(ready, vec![5]);
        }
    }
}
