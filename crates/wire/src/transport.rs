//! The transport boundary: framed byte buffers in, framed byte buffers out.
//!
//! The federation driver never moves typed values between endpoints — it
//! encodes a [`crate::WireMessage`] to a frame, `send`s the frame, `recv`s
//! it on the other side, and decodes. [`Loopback`] is the in-memory
//! reference implementation (a FIFO queue) used by the simulation; the
//! trait is the hook for lossy, delayed, faulty, or compressed transports.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::frame::WireError;

/// A unidirectional, ordered channel for framed byte buffers.
///
/// Implementations must preserve frame boundaries and FIFO order. `Sync`
/// so one endpoint can be shared across worker threads.
pub trait Transport: Send + Sync {
    /// Queues one frame for delivery.
    fn send(&self, frame: Vec<u8>) -> Result<(), WireError>;

    /// Takes the next delivered frame, or `Ok(None)` when none is pending.
    fn recv(&self) -> Result<Option<Vec<u8>>, WireError>;
}

/// In-memory loopback transport: frames come out exactly as they went in,
/// in order, with no loss — the reference against which every other
/// transport (and the codec itself) is equivalence-tested.
#[derive(Debug, Default)]
pub struct Loopback {
    queue: Mutex<VecDeque<Vec<u8>>>,
}

impl Loopback {
    /// An empty loopback channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frames currently queued.
    pub fn pending(&self) -> usize {
        self.queue.lock().expect("loopback queue poisoned").len()
    }
}

impl Transport for Loopback {
    fn send(&self, frame: Vec<u8>) -> Result<(), WireError> {
        self.queue
            .lock()
            .expect("loopback queue poisoned")
            .push_back(frame);
        Ok(())
    }

    fn recv(&self) -> Result<Option<Vec<u8>>, WireError> {
        Ok(self
            .queue
            .lock()
            .expect("loopback queue poisoned")
            .pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_preserves_frames_and_order() {
        let link = Loopback::new();
        link.send(vec![1, 2, 3]).unwrap();
        link.send(vec![4]).unwrap();
        assert_eq!(link.pending(), 2);
        assert_eq!(link.recv().unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(link.recv().unwrap(), Some(vec![4]));
        assert_eq!(link.recv().unwrap(), None);
    }

    #[test]
    fn loopback_is_usable_behind_a_trait_object() {
        let link: Box<dyn Transport> = Box::new(Loopback::new());
        link.send(vec![7]).unwrap();
        assert_eq!(link.recv().unwrap(), Some(vec![7]));
    }
}
