//! Peer-addressed transport surface: [`Link`] moves sealed frames to one
//! remote peer, [`Listener`] accepts inbound links, and [`Loopback`] is the
//! in-memory oracle the socket transports are checked against.
//!
//! A sender encodes a [`crate::WireMessage`] into a frame, the receiver
//! decodes it on the other side. Receiving is *always* deadline-bounded:
//! [`Link::recv_deadline`] blocks (it does not spin) until a frame arrives,
//! the deadline passes, or the peer goes away — the three outcomes are
//! distinct [`RecvError`] variants, so a server can tell a straggler from a
//! dropout.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::frame::WireError;

/// Identifies one remote peer on a [`Link`]. The accepting [`Listener`]
/// assigns ids; an outbound connection talks to peer 0 (the server).
pub type PeerId = u64;

/// Reserved [`PeerId`] of the server end of an outbound connection.
pub const SERVER_PEER: PeerId = 0;

/// Receive failure. `#[non_exhaustive]`: future transports may add
/// variants without a semver break.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecvError {
    /// No frame arrived before the deadline; the link is still usable.
    DeadlineExceeded,
    /// The peer closed the connection (or the link was closed locally);
    /// no further frames will arrive.
    Disconnected,
    /// The byte stream violated framing (e.g. an absurd length prefix) —
    /// the link is poisoned and should be dropped.
    Frame(WireError),
    /// An I/O failure other than a clean close.
    Io(String),
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DeadlineExceeded => write!(f, "receive deadline exceeded"),
            Self::Disconnected => write!(f, "peer disconnected"),
            Self::Frame(e) => write!(f, "stream framing error: {e}"),
            Self::Io(msg) => write!(f, "receive i/o error: {msg}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Connection / accept failure. `#[non_exhaustive]`: future transports may
/// add variants without a semver break.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConnectError {
    /// No connection was established before the deadline.
    DeadlineExceeded,
    /// The endpoint string could not be parsed.
    BadAddress(String),
    /// A TCP endpoint (`tcp:host:port` or `host:port`) with an empty host
    /// part, e.g. `tcp::7700`.
    EmptyHost(String),
    /// A Unix-socket endpoint with an empty path, i.e. the bare `unix:`.
    EmptyPath(String),
    /// The remote actively refused (or the socket could not be bound).
    Refused(String),
    /// Any other I/O failure.
    Io(String),
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DeadlineExceeded => write!(f, "connect deadline exceeded"),
            Self::BadAddress(a) => write!(f, "bad endpoint address: {a}"),
            Self::EmptyHost(a) => write!(f, "empty host in endpoint address: {a}"),
            Self::EmptyPath(a) => write!(f, "empty socket path in endpoint address: {a}"),
            Self::Refused(msg) => write!(f, "connection refused: {msg}"),
            Self::Io(msg) => write!(f, "connect i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// A bidirectional, frame-oriented channel to one remote peer.
///
/// Implementations must be usable from multiple threads (`Send + Sync`);
/// the server receives on a collector thread while the driver sends.
pub trait Link: Send + Sync {
    /// The remote peer this link talks to.
    fn peer_id(&self) -> PeerId;

    /// Queues one sealed frame for the peer. Fails with
    /// [`WireError::TransportClosed`] once the link is closed.
    fn send(&self, frame: &[u8]) -> Result<(), WireError>;

    /// Blocks until a frame arrives or `deadline` passes. Implementations
    /// must sleep while waiting — a caller polling an idle link burns no
    /// CPU — and must distinguish a timeout ([`RecvError::DeadlineExceeded`])
    /// from a gone peer ([`RecvError::Disconnected`]).
    fn recv_deadline(&self, deadline: Instant) -> Result<Vec<u8>, RecvError>;

    /// Switches the link into (or out of) readiness mode. In readiness
    /// mode the `try_*` methods never block and a reactor drives the link
    /// off a [`crate::PollSet`]; the blocking [`Link::send`] /
    /// [`Link::recv_deadline`] API remains the client-side contract.
    /// Default: no-op — in-memory links are always ready.
    fn set_nonblocking(&self, _on: bool) -> Result<(), WireError> {
        Ok(())
    }

    /// Non-blocking receive: one complete frame if available *now*,
    /// `Ok(None)` otherwise. Partially received frames are reassembled
    /// across calls, so interleaving with [`Link::recv_deadline`] is safe.
    /// Default: a zero-deadline [`Link::recv_deadline`], correct for links
    /// that check their queue before the deadline.
    fn try_recv_frame(&self) -> Result<Option<Vec<u8>>, RecvError> {
        match self.recv_deadline(Instant::now()) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvError::DeadlineExceeded) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Queues one sealed frame on the link's outbound buffer and flushes
    /// opportunistically, returning the bytes still pending afterwards —
    /// the reactor's backpressure signal. Default: a blocking
    /// [`Link::send`] with nothing left pending.
    fn enqueue_frame(&self, frame: &[u8]) -> Result<usize, WireError> {
        self.send(frame).map(|()| 0)
    }

    /// Drains as much of the outbound buffer as the transport accepts
    /// without blocking; returns the bytes still pending. Default: nothing
    /// is ever buffered.
    fn try_flush(&self) -> Result<usize, WireError> {
        Ok(0)
    }

    /// Outbound bytes accepted by [`Link::enqueue_frame`] but not yet
    /// written to the transport.
    fn pending_tx(&self) -> usize {
        0
    }

    /// The raw file descriptor a [`crate::PollSet`] can watch for
    /// readiness, when the transport has one. `None` selects the poll
    /// set's bounded-sleep fallback.
    fn poll_fd(&self) -> Option<i32> {
        None
    }

    /// Closes the link; subsequent sends fail and blocked receivers wake
    /// with [`RecvError::Disconnected`]. Default: no-op.
    fn close(&self) {}
}

/// Accepts inbound [`Link`]s (the server side of a transport).
pub trait Listener: Send {
    /// Blocks until a peer connects or `deadline` passes. Each accepted
    /// link carries a fresh, listener-unique [`PeerId`].
    fn accept_deadline(&self, deadline: Instant) -> Result<Box<dyn Link>, ConnectError>;

    /// Non-blocking accept: a freshly connected link if one is pending
    /// *now*, `Ok(None)` otherwise. Default: a zero-deadline
    /// [`Listener::accept_deadline`].
    fn try_accept_link(&self) -> Result<Option<Box<dyn Link>>, ConnectError> {
        match self.accept_deadline(Instant::now()) {
            Ok(link) => Ok(Some(link)),
            Err(ConnectError::DeadlineExceeded) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// The raw file descriptor a [`crate::PollSet`] can watch for pending
    /// connections, when the transport has one.
    fn poll_fd(&self) -> Option<i32> {
        None
    }

    /// Human-readable bound address (for logs and client hand-off).
    fn local_addr(&self) -> String;
}

/// In-memory link: frames sent on it are received back from it, in order.
///
/// This is the byte-identical oracle for every socket transport — a
/// loopback-framed run must produce the same bytes as a networked one —
/// and the simulation's default path when the codec is not bypassed.
/// Waiting receivers block on a condvar (see [`Loopback::wait_count`] for
/// the regression hook proving they sleep rather than spin).
pub struct Loopback {
    peer: PeerId,
    queue: Mutex<VecDeque<Vec<u8>>>,
    ready: Condvar,
    closed: AtomicBool,
    waits: AtomicU64,
}

impl Loopback {
    /// An open loopback link addressed as [`SERVER_PEER`].
    pub fn new() -> Self {
        Self::with_peer(SERVER_PEER)
    }

    /// An open loopback link addressed as `peer`.
    pub fn with_peer(peer: PeerId) -> Self {
        Self {
            peer,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
            waits: AtomicU64::new(0),
        }
    }

    /// Frames queued but not yet received.
    pub fn pending(&self) -> usize {
        self.queue.lock().expect("loopback lock poisoned").len()
    }

    /// How many times a receiver parked on the condvar. A blocked receiver
    /// parks O(1) times per wait; a spinning one would count thousands.
    pub fn wait_count(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }
}

impl Default for Loopback {
    fn default() -> Self {
        Self::new()
    }
}

impl Link for Loopback {
    fn peer_id(&self) -> PeerId {
        self.peer
    }

    fn send(&self, frame: &[u8]) -> Result<(), WireError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(WireError::TransportClosed);
        }
        self.queue
            .lock()
            .expect("loopback lock poisoned")
            .push_back(frame.to_vec());
        self.ready.notify_one();
        Ok(())
    }

    fn recv_deadline(&self, deadline: Instant) -> Result<Vec<u8>, RecvError> {
        let mut queue = self.queue.lock().expect("loopback lock poisoned");
        loop {
            if let Some(frame) = queue.pop_front() {
                return Ok(frame);
            }
            if self.closed.load(Ordering::SeqCst) {
                return Err(RecvError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::DeadlineExceeded);
            }
            self.waits.fetch_add(1, Ordering::Relaxed);
            let (guard, _timeout) = self
                .ready
                .wait_timeout(queue, deadline - now)
                .expect("loopback lock poisoned");
            queue = guard;
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Wake every parked receiver so it observes the close.
        let _guard = self.queue.lock().expect("loopback lock poisoned");
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn frames_come_back_in_order() {
        let link = Loopback::new();
        link.send(&[1, 2, 3]).unwrap();
        link.send(&[4]).unwrap();
        assert_eq!(link.pending(), 2);
        assert_eq!(link.recv_deadline(far()).unwrap(), vec![1, 2, 3]);
        assert_eq!(link.recv_deadline(far()).unwrap(), vec![4]);
        assert_eq!(link.pending(), 0);
    }

    #[test]
    fn usable_as_trait_object() {
        let link: Box<dyn Link> = Box::new(Loopback::with_peer(9));
        assert_eq!(link.peer_id(), 9);
        link.send(&[7]).unwrap();
        assert_eq!(link.recv_deadline(far()).unwrap(), vec![7]);
    }

    #[test]
    fn empty_queue_times_out() {
        let link = Loopback::new();
        let deadline = Instant::now() + Duration::from_millis(30);
        assert_eq!(
            link.recv_deadline(deadline),
            Err(RecvError::DeadlineExceeded)
        );
        assert!(Instant::now() >= deadline);
    }

    #[test]
    fn waiting_receiver_sleeps_rather_than_spins() {
        // The busy-poll regression test: a receiver waiting out a 120ms
        // deadline on an idle link must park on the condvar (a handful of
        // waits, allowing spurious wakeups), not spin through thousands of
        // poll iterations.
        let link = Loopback::new();
        let start = Instant::now();
        let deadline = start + Duration::from_millis(120);
        assert_eq!(
            link.recv_deadline(deadline),
            Err(RecvError::DeadlineExceeded)
        );
        assert!(start.elapsed() >= Duration::from_millis(100));
        assert!(
            link.wait_count() <= 16,
            "receiver spun: {} condvar waits for one idle deadline",
            link.wait_count()
        );
    }

    #[test]
    fn readiness_defaults_fit_the_loopback() {
        // The defaulted try_* surface must behave correctly for a link
        // whose queue is checked before the deadline: no frame -> None,
        // queued frame -> Some, closed -> Disconnected, nothing buffered.
        let link = Loopback::new();
        assert_eq!(link.try_recv_frame().unwrap(), None);
        link.set_nonblocking(true).unwrap();
        assert_eq!(link.enqueue_frame(&[1, 2]).unwrap(), 0);
        assert_eq!(link.pending_tx(), 0);
        assert_eq!(link.try_flush().unwrap(), 0);
        assert_eq!(link.try_recv_frame().unwrap(), Some(vec![1, 2]));
        assert_eq!(link.poll_fd(), None);
        link.close();
        assert_eq!(link.try_recv_frame(), Err(RecvError::Disconnected));
    }

    #[test]
    fn sender_wakes_blocked_receiver() {
        let link = std::sync::Arc::new(Loopback::new());
        let rx = std::sync::Arc::clone(&link);
        let handle = std::thread::spawn(move || rx.recv_deadline(far()));
        std::thread::sleep(Duration::from_millis(20));
        link.send(&[42]).unwrap();
        assert_eq!(handle.join().unwrap().unwrap(), vec![42]);
    }

    #[test]
    fn close_unblocks_and_poisons() {
        let link = std::sync::Arc::new(Loopback::new());
        let rx = std::sync::Arc::clone(&link);
        let handle = std::thread::spawn(move || rx.recv_deadline(far()));
        std::thread::sleep(Duration::from_millis(20));
        link.close();
        assert_eq!(handle.join().unwrap(), Err(RecvError::Disconnected));
        assert_eq!(link.send(&[1]), Err(WireError::TransportClosed));
    }
}
