//! Criterion micro-benchmarks for the substrate hot paths: dense linear
//! algebra, attention, the CDAP generator, FINCH clustering, FedAvg, and the
//! DPCL loss. These quantify where a federated round's time goes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use refil_clustering::{finch, kmeans};
use refil_core::{dpcl_loss, CdapConfig, CdapGenerator};
use refil_fed::{fedavg, WeightedUpdate};
use refil_nn::layers::TransformerBlock;
use refil_nn::models::{BackboneConfig, PromptedBackbone};
use refil_nn::{Graph, Params, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[128, 128], 1.0, &mut rng);
    let b = Tensor::randn(&[128, 128], 1.0, &mut rng);
    c.bench_function("tensor/matmul_128x128", |bench| bench.iter(|| a.matmul(&b)));
}

fn bench_attention_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut params = Params::new();
    let blk = TransformerBlock::new(&mut params, "b", 32, 4, &mut rng);
    let x = Tensor::randn(&[32, 9, 32], 1.0, &mut rng);
    c.bench_function("nn/attention_block_fwd_b32_t9_d32", |bench| {
        bench.iter(|| {
            let g = Graph::new();
            let xv = g.constant(x.clone());
            let y = blk.forward(&g, &params, xv);
            g.value(y)
        })
    });
}

fn bench_backbone_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut params = Params::new();
    let cfg = BackboneConfig::default();
    let model = PromptedBackbone::new(&mut params, "m", cfg, &mut rng);
    let x = Tensor::randn(&[32, cfg.in_dim], 1.0, &mut rng);
    let labels: Vec<usize> = (0..32).map(|i| i % cfg.classes).collect();
    c.bench_function("nn/backbone_fwd_bwd_b32", |bench| {
        bench.iter_batched(
            || params.clone(),
            |mut p| {
                let g = Graph::new();
                let out = model.forward(&g, &p, &x, None);
                let loss = g.cross_entropy(out.logits, &labels);
                g.backward(loss, &mut p);
                p
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cdap_generate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut params = Params::new();
    let gen = CdapGenerator::new(&mut params, "cdap", CdapConfig::default(), &mut rng);
    let tokens = Tensor::randn(&[32, 5, 32], 1.0, &mut rng);
    c.bench_function("core/cdap_generate_b32", |bench| {
        bench.iter(|| {
            let g = Graph::new();
            let tv = g.constant(tokens.clone());
            let p = gen.generate(&g, &params, tv, 2);
            g.value(p)
        })
    });
}

fn bench_finch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    // 64 prompts from 4 synthetic domains of dimension 128 (p*d = 4*32).
    let mut points = Vec::new();
    for dom in 0..4 {
        let center = Tensor::randn(&[128], 1.0, &mut rng);
        for _ in 0..16 {
            let noise = Tensor::randn(&[128], 0.1, &mut rng);
            points.push(
                center
                    .data()
                    .iter()
                    .zip(noise.data())
                    .map(|(a, b)| a + b + dom as f32)
                    .collect::<Vec<f32>>(),
            );
        }
    }
    c.bench_function("clustering/finch_64x128", |bench| {
        bench.iter(|| finch(&points))
    });
    c.bench_function("clustering/kmeans_64x128_k4", |bench| {
        bench.iter(|| kmeans(&points, 4, 7, 50))
    });
}

fn bench_fedavg(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let updates: Vec<WeightedUpdate> = (0..10)
        .map(|i| WeightedUpdate {
            flat: Tensor::randn(&[50_000], 1.0, &mut rng).into_vec(),
            weight: 1.0 + i as f32,
        })
        .collect();
    c.bench_function("fed/fedavg_10x50k", |bench| bench.iter(|| fedavg(&updates)));
}

fn bench_dpcl(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let u = Tensor::randn(&[32, 128], 1.0, &mut rng);
    let candidates: Vec<Vec<f32>> = (0..40)
        .map(|_| Tensor::randn(&[128], 1.0, &mut rng).into_vec())
        .collect();
    let classes: Vec<usize> = (0..40).map(|i| i % 10).collect();
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    c.bench_function("core/dpcl_loss_b32_m40", |bench| {
        bench.iter(|| {
            let g = Graph::new();
            let uv = g.constant(u.clone());
            let l = dpcl_loss(&g, uv, &candidates, &classes, &labels, 1, 0.7).unwrap();
            g.value(l)
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_attention_forward, bench_backbone_step,
        bench_cdap_generate, bench_finch, bench_fedavg, bench_dpcl
}
criterion_main!(micro);
