//! Criterion micro-benchmarks for the substrate hot paths: dense linear
//! algebra, attention, the CDAP generator, FINCH clustering, FedAvg, and the
//! DPCL loss. These quantify where a federated round's time goes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use refil_clustering::{finch, kmeans};
use refil_continual::{Finetune, MethodConfig};
use refil_core::{dpcl_loss, CdapConfig, CdapGenerator, RefFiL, RefFiLConfig};
use refil_data::{DatasetSpec, DomainSpec};
use refil_fed::{fedavg, FdilRunner, IncrementConfig, RunConfig, WeightedUpdate};
use refil_nn::layers::TransformerBlock;
use refil_nn::models::{BackboneConfig, PromptedBackbone};
use refil_nn::{force_taped, Graph, Params, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[128, 128], 1.0, &mut rng);
    let b = Tensor::randn(&[128, 128], 1.0, &mut rng);
    c.bench_function("tensor/matmul_128x128", |bench| bench.iter(|| a.matmul(&b)));
}

fn bench_gemm(c: &mut Criterion) {
    use refil_nn::gemm::{gemm, gemm_ref_branchy};
    let mut rng = StdRng::seed_from_u64(7);
    // (label, m, k, n): a square stress shape plus the two shapes the
    // quickstart config actually runs — token projections ([b*t, d] x [d, d])
    // and the classifier head ([b, d] x [d, classes]).
    let shapes = [
        ("128x128x128", 128usize, 128usize, 128usize),
        ("tokens_160x32x32", 160, 32, 32),
        ("classifier_32x32x10", 32, 32, 10),
    ];
    for (label, m, k, n) in shapes {
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let mut out = vec![0.0f32; m * n];
        c.bench_function(&format!("nn/gemm/tiled_{label}"), |bench| {
            bench.iter(|| {
                out.fill(0.0);
                gemm(a.data(), b.data(), &mut out, m, k, n);
                out[0]
            })
        });
        c.bench_function(&format!("nn/gemm/naive_{label}"), |bench| {
            bench.iter(|| {
                out.fill(0.0);
                gemm_ref_branchy(a.data(), b.data(), &mut out, m, k, n);
                out[0]
            })
        });
    }
}

fn bench_gemm_zero_branch(c: &mut Criterion) {
    // Before/after of dropping `if av == 0.0 { continue; }` from the naive
    // inner loop, isolated from tiling: same ikj loop, only the branch
    // differs. Dense random inputs — the branch never fires, it just costs.
    use refil_nn::gemm::{gemm_ref, gemm_ref_branchy};
    let mut rng = StdRng::seed_from_u64(8);
    let (m, k, n) = (128usize, 128usize, 128usize);
    let a = Tensor::randn(&[m, k], 1.0, &mut rng);
    let b = Tensor::randn(&[k, n], 1.0, &mut rng);
    let mut out = vec![0.0f32; m * n];
    c.bench_function("nn/gemm_zero_branch/with_branch_128", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            gemm_ref_branchy(a.data(), b.data(), &mut out, m, k, n);
            out[0]
        })
    });
    c.bench_function("nn/gemm_zero_branch/without_branch_128", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            gemm_ref(a.data(), b.data(), &mut out, m, k, n);
            out[0]
        })
    });
}

fn bench_conv1d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let (b, c_in, l, c_out, k, pad) = (32usize, 4usize, 32usize, 8usize, 5usize, 2usize);
    let x = Tensor::randn(&[b, c_in, l], 1.0, &mut rng);
    let w = Tensor::randn(&[c_out, c_in, k], 0.5, &mut rng);
    let bias = Tensor::randn(&[c_out], 0.5, &mut rng);
    c.bench_function("nn/conv1d_fwd/b32_c4x8_l32_k5", |bench| {
        bench.iter(|| {
            let g = Graph::new();
            let xv = g.constant(x.clone());
            let wv = g.constant(w.clone());
            let bv = g.constant(bias.clone());
            g.value(g.conv1d(xv, wv, bv, pad))
        })
    });
    let mut params = Params::new();
    params.insert("x", x.clone(), true);
    params.insert("w", w.clone(), true);
    params.insert("b", bias.clone(), true);
    c.bench_function("nn/conv1d_bwd/b32_c4x8_l32_k5", |bench| {
        bench.iter_batched(
            || params.clone(),
            |mut p| {
                let g = Graph::new();
                let xv = g.param(&p, p.id("x").unwrap());
                let wv = g.param(&p, p.id("w").unwrap());
                let bv = g.param(&p, p.id("b").unwrap());
                let y = g.conv1d(xv, wv, bv, pad);
                let t = g.tanh(y);
                let s = g.sum_all(t);
                g.backward(s, &mut p);
                p
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_attention_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut params = Params::new();
    let blk = TransformerBlock::new(&mut params, "b", 32, 4, &mut rng);
    let x = Tensor::randn(&[32, 9, 32], 1.0, &mut rng);
    c.bench_function("nn/attention_block_fwd_b32_t9_d32", |bench| {
        bench.iter(|| {
            let g = Graph::new();
            let xv = g.constant(x.clone());
            let y = blk.forward(&g, &params, xv);
            g.value(y)
        })
    });
}

fn bench_backbone_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut params = Params::new();
    let cfg = BackboneConfig::default();
    let model = PromptedBackbone::new(&mut params, "m", cfg, &mut rng);
    let x = Tensor::randn(&[32, cfg.in_dim], 1.0, &mut rng);
    let labels: Vec<usize> = (0..32).map(|i| i % cfg.classes).collect();
    c.bench_function("nn/backbone_fwd_bwd_b32", |bench| {
        bench.iter_batched(
            || params.clone(),
            |mut p| {
                let g = Graph::new();
                let out = model.forward(&g, &p, &x, None);
                let loss = g.cross_entropy(out.logits, &labels);
                g.backward(loss, &mut p);
                p
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cdap_generate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut params = Params::new();
    let gen = CdapGenerator::new(&mut params, "cdap", CdapConfig::default(), &mut rng);
    let tokens = Tensor::randn(&[32, 5, 32], 1.0, &mut rng);
    c.bench_function("core/cdap_generate_b32", |bench| {
        bench.iter(|| {
            let g = Graph::new();
            let tv = g.constant(tokens.clone());
            let p = gen.generate(&g, &params, tv, 2);
            g.value(p)
        })
    });
}

fn bench_finch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    // 64 prompts from 4 synthetic domains of dimension 128 (p*d = 4*32).
    let mut points = Vec::new();
    for dom in 0..4 {
        let center = Tensor::randn(&[128], 1.0, &mut rng);
        for _ in 0..16 {
            let noise = Tensor::randn(&[128], 0.1, &mut rng);
            points.push(
                center
                    .data()
                    .iter()
                    .zip(noise.data())
                    .map(|(a, b)| a + b + dom as f32)
                    .collect::<Vec<f32>>(),
            );
        }
    }
    c.bench_function("clustering/finch_64x128", |bench| {
        bench.iter(|| finch(&points))
    });
    c.bench_function("clustering/kmeans_64x128_k4", |bench| {
        bench.iter(|| kmeans(&points, 4, 7, 50))
    });
}

fn bench_fedavg(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let updates: Vec<WeightedUpdate> = (0..10)
        .map(|i| WeightedUpdate {
            flat: Tensor::randn(&[50_000], 1.0, &mut rng).into_vec(),
            weight: 1.0 + i as f32,
        })
        .collect();
    c.bench_function("fed/fedavg_10x50k", |bench| bench.iter(|| fedavg(&updates)));
}

fn bench_dpcl(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let u = Tensor::randn(&[32, 128], 1.0, &mut rng);
    let candidates: Vec<Vec<f32>> = (0..40)
        .map(|_| Tensor::randn(&[128], 1.0, &mut rng).into_vec())
        .collect();
    let classes: Vec<usize> = (0..40).map(|i| i % 10).collect();
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    c.bench_function("core/dpcl_loss_b32_m40", |bench| {
        bench.iter(|| {
            let g = Graph::new();
            let uv = g.constant(u.clone());
            let l = dpcl_loss(&g, uv, &candidates, &classes, &labels, 1, 0.7).unwrap();
            g.value(l)
        })
    });
}

fn bench_span_overhead(c: &mut Criterion) {
    // Telemetry hot-path cost. The disabled rows must be ~free (a None
    // check, no clock read, no allocation): telemetry defaults to disabled
    // in every runner, so its cost is paid by every un-instrumented run.
    // The collecting rows price what `--trace`-style runs add per span.
    use refil_telemetry::Telemetry;
    let disabled = Telemetry::disabled();
    c.bench_function("telemetry/span_overhead/disabled", |bench| {
        bench.iter(|| disabled.span("client:7"))
    });
    c.bench_function("telemetry/counter_overhead/disabled", |bench| {
        bench.iter(|| disabled.counter("wire.model_broadcast_bytes", 128))
    });
    let collecting = Telemetry::collecting();
    c.bench_function("telemetry/span_overhead/collecting", |bench| {
        bench.iter(|| collecting.span("client:7"))
    });
    c.bench_function("telemetry/counter_overhead/collecting", |bench| {
        bench.iter(|| collecting.counter("wire.model_broadcast_bytes", 128))
    });
    // A lane record is the per-item cost inside worker pools. Fresh lane per
    // batch so the preallocated event buffer never reallocates mid-measure.
    let timeline = collecting.timeline();
    c.bench_function("telemetry/lane_record/collecting", |bench| {
        bench.iter_batched(
            || timeline.lane(0),
            |mut lane| {
                let t0 = lane.tick();
                lane.record("eval", Some(3), t0);
                lane
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_round_parallel(c: &mut Criterion) {
    // Full protocol runs of one strategy, sequential vs on 4 workers; the
    // parallel/sequential ratio is the round-loop speedup (results are
    // byte-identical either way, so only wall time differs).
    let dataset = DatasetSpec {
        name: "bench".into(),
        classes: 3,
        feature_dim: 8,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.3,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 400, 0.15, 0.05),
            DomainSpec::new("d1", 400, 0.3, 0.4),
        ],
    }
    .generate(11);
    let method = MethodConfig {
        backbone: BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: refil_nn::models::ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    };
    let run_cfg = RunConfig {
        increment: IncrementConfig {
            initial_clients: 8,
            select_per_round: 8,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 2,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 128,
        dropout_prob: 0.0,
        seed: 13,
    };
    c.bench_function("fed/round_parallel/threads_1", |bench| {
        bench.iter(|| {
            let mut strat = Finetune::new(method);
            FdilRunner::new(run_cfg)
                .threads(1)
                .run(&dataset, &mut strat)
        })
    });
    c.bench_function("fed/round_parallel/threads_4", |bench| {
        bench.iter(|| {
            let mut strat = Finetune::new(method);
            FdilRunner::new(run_cfg)
                .threads(4)
                .run(&dataset, &mut strat)
        })
    });
}

fn bench_evaluate(c: &mut Criterion) {
    // The per-domain eval sweep of a trained RefFiL model, taped vs
    // tape-free and serial vs parallel. All four are byte-identical
    // (enforced by tests/inference.rs); only wall time differs.
    let dataset = DatasetSpec {
        name: "bench_eval".into(),
        classes: 3,
        feature_dim: 8,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.5,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 400, 0.15, 0.05),
            DomainSpec::new("d1", 400, 0.3, 0.4),
        ],
    }
    .generate(11);
    let method = MethodConfig {
        backbone: BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: refil_nn::models::ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    };
    let run_cfg = RunConfig {
        increment: IncrementConfig {
            initial_clients: 4,
            select_per_round: 4,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 2,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 16,
        dropout_prob: 0.0,
        seed: 13,
    };
    let mut strat = RefFiL::new(RefFiLConfig::new(method));
    let res = FdilRunner::new(run_cfg).run(&dataset, &mut strat);
    let global = res.final_global;
    let last = dataset.num_domains() - 1;
    let serial = FdilRunner::new(run_cfg).threads(1);
    let parallel = FdilRunner::new(run_cfg).threads(4);

    force_taped(true);
    c.bench_function("fed/evaluate/taped_serial", |bench| {
        bench.iter(|| serial.evaluate_task(&strat, &global, &dataset, last))
    });
    force_taped(false);
    c.bench_function("fed/evaluate/tape_free_serial", |bench| {
        bench.iter(|| serial.evaluate_task(&strat, &global, &dataset, last))
    });
    c.bench_function("fed/evaluate/tape_free_threads_4", |bench| {
        bench.iter(|| parallel.evaluate_task(&strat, &global, &dataset, last))
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_gemm, bench_gemm_zero_branch, bench_conv1d,
        bench_attention_forward, bench_backbone_step,
        bench_cdap_generate, bench_finch, bench_fedavg, bench_dpcl,
        bench_span_overhead, bench_round_parallel, bench_evaluate
}
criterion_main!(micro);
