//! End-to-end telemetry tests: trace structure, traffic agreement, and
//! determinism of the federated loop under different sinks.

use std::collections::BTreeMap;

use refil_bench::{run_experiment_traced, DatasetChoice, ExperimentSpec, MethodChoice, Scale};
use refil_telemetry::{Telemetry, TraceEvent};

fn smoke_spec(dataset: DatasetChoice) -> ExperimentSpec {
    ExperimentSpec {
        dataset,
        scale: Scale::smoke(),
        new_order: false,
        seed: 7,
    }
}

fn temp_trace_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir()
        .join("refil-trace-tests")
        .join(format!("{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn jsonl_trace_covers_every_task_round_and_client_session() {
    let path = temp_trace_path("structure");
    let telemetry = Telemetry::jsonl(&path).expect("create trace sink");
    let spec = smoke_spec(DatasetChoice::OfficeCaltech10);
    let r = run_experiment_traced(&spec, MethodChoice::Finetune, &telemetry);
    telemetry.flush();

    let text = std::fs::read_to_string(&path).expect("read trace");
    let events: Vec<TraceEvent> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("every line parses as one TraceEvent"))
        .collect();
    assert!(!events.is_empty(), "trace is empty");

    let mut span_starts: Vec<&str> = Vec::new();
    let mut span_ends: BTreeMap<String, u64> = BTreeMap::new();
    let mut final_counters: BTreeMap<String, u64> = BTreeMap::new();
    for e in &events {
        match e {
            TraceEvent::SpanStart { path } => span_starts.push(path),
            TraceEvent::SpanEnd { path, duration_ns } => {
                // u64 is non-negative by construction; record for pairing.
                span_ends.insert(path.clone(), *duration_ns);
            }
            TraceEvent::Counter { name, total, .. } => {
                final_counters.insert(name.clone(), *total);
            }
            _ => {}
        }
    }

    // Every opened span closed (paths are unique per (task,round,client)
    // combination except repeated leaf names, which still pair up).
    for p in &span_starts {
        assert!(span_ends.contains_key(*p), "span {p} never closed");
    }

    // One run span, one span per task, per round, per client session.
    let tasks = r.result.domain_acc.len();
    assert!(span_starts.contains(&"run"), "missing run span");
    for t in 0..tasks {
        assert!(
            span_starts.iter().any(|p| *p == format!("run/task:{t}")),
            "missing span for task {t}"
        );
    }
    let leaf = |p: &str| p.rsplit('/').next().unwrap_or("").to_string();
    let round_spans = span_starts
        .iter()
        .filter(|p| leaf(p).starts_with("round:"))
        .count();
    assert_eq!(
        round_spans as u64, r.result.traffic.rounds,
        "one span per round"
    );
    let client_spans = span_starts
        .iter()
        .filter(|p| leaf(p).starts_with("client:"))
        .count();
    assert_eq!(
        client_spans as u64, r.result.traffic.client_updates,
        "one span per client session"
    );
    let eval_spans = span_starts
        .iter()
        .filter(|p| p.ends_with("/evaluate_domain"))
        .count();
    assert!(eval_spans > 0, "missing evaluation spans");

    // Trace byte counters match TrafficStats exactly.
    assert_eq!(
        final_counters["traffic.up_bytes"],
        r.result.traffic.up_bytes
    );
    assert_eq!(
        final_counters["traffic.down_bytes"],
        r.result.traffic.down_bytes
    );
    assert_eq!(final_counters["rounds"], r.result.traffic.rounds);
    assert_eq!(
        final_counters["clients.trained"],
        r.result.traffic.client_updates
    );

    // The summary surfaced on the result agrees with the streamed totals.
    assert_eq!(
        r.result.telemetry.counter("traffic.up_bytes"),
        r.result.traffic.up_bytes
    );
    assert_eq!(
        r.result.telemetry.counter("traffic.down_bytes"),
        r.result.traffic.down_bytes
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn reffil_trace_records_prompt_and_clustering_activity() {
    let path = temp_trace_path("reffil");
    let telemetry = Telemetry::jsonl(&path).expect("create trace sink");
    let spec = smoke_spec(DatasetChoice::OfficeCaltech10);
    let r = run_experiment_traced(&spec, MethodChoice::RefFiL, &telemetry);
    telemetry.flush();

    let summary = &r.result.telemetry;
    assert!(
        summary.counter("wire.prompt_upload_bytes") > 0,
        "no prompt upload frames recorded"
    );
    assert!(
        summary.counter("wire.global_prompt_broadcast_bytes") > 0,
        "no global prompt broadcast frames recorded"
    );
    assert!(
        summary.counter("wire.model_broadcast_bytes") > 0
            && summary.counter("wire.client_model_update_bytes") > 0,
        "model frames unaccounted"
    );
    // The per-kind wire counters partition the traffic totals exactly.
    let wire_total: u64 = summary
        .counters_with_prefix("wire.")
        .map(|(_, bytes)| bytes)
        .sum();
    assert_eq!(
        wire_total,
        r.result.traffic.total_bytes(),
        "per-kind wire counters do not sum to total traffic"
    );
    assert!(
        summary.spans.keys().any(|k| k == "prompt_ingest"),
        "no ingest spans"
    );
    assert!(
        summary.spans.keys().any(|k| k == "finch_cluster"),
        "no FINCH spans"
    );
    assert!(
        summary.spans.keys().any(|k| k == "local_train"),
        "no local training spans"
    );
    assert!(
        summary.histograms.contains_key("dpcl.temperature"),
        "DPCL temperature not observed"
    );
    assert!(
        summary.histograms.contains_key("prompt.pool_size"),
        "prompt pool size not observed"
    );

    // The streamed trace contains the nested FINCH spans too.
    let text = std::fs::read_to_string(&path).expect("read trace");
    assert!(
        text.contains("finch_cluster"),
        "trace lacks finch_cluster spans"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn telemetry_does_not_perturb_results() {
    let spec = smoke_spec(DatasetChoice::OfficeCaltech10);
    for method in [MethodChoice::Finetune, MethodChoice::RefFiL] {
        let r_disabled = run_experiment_traced(&spec, method, &Telemetry::disabled());
        let r_collecting = run_experiment_traced(&spec, method, &Telemetry::collecting());
        assert_eq!(
            r_disabled.result.domain_acc, r_collecting.result.domain_acc,
            "telemetry changed {method:?} results"
        );
        assert_eq!(r_disabled.result.traffic, r_collecting.result.traffic);
        assert!(
            r_disabled.result.telemetry.is_empty(),
            "disabled run has a summary"
        );
        assert!(
            !r_collecting.result.telemetry.is_empty(),
            "collecting run lost its summary"
        );
    }
}

#[test]
fn per_task_traffic_breakdown_sums_to_totals() {
    let spec = smoke_spec(DatasetChoice::OfficeCaltech10);
    let r = run_experiment_traced(&spec, MethodChoice::RefFiL, &Telemetry::disabled());
    let t = &r.result.traffic;
    assert_eq!(
        t.per_task.len(),
        r.result.domain_acc.len(),
        "one slice per task"
    );
    assert_eq!(
        t.per_task.iter().map(|s| s.up_bytes).sum::<u64>(),
        t.up_bytes
    );
    assert_eq!(
        t.per_task.iter().map(|s| s.down_bytes).sum::<u64>(),
        t.down_bytes
    );
    assert_eq!(t.per_task.iter().map(|s| s.rounds).sum::<u64>(), t.rounds);
    assert_eq!(
        t.per_task.iter().map(|s| s.client_updates).sum::<u64>(),
        t.client_updates
    );
}
