//! Provenance header stamped into every `BENCH_*.json` report.
//!
//! Perf medians are only comparable between runs taken on the same machine
//! with the same thread budget; [`BenchMeta`] records enough provenance for
//! `bench_gate` to refuse apples-to-oranges diffs instead of flagging a
//! hardware change as a regression.

use serde::{Deserialize, Serialize};

/// Where and how a bench report was produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchMeta {
    /// `git rev-parse HEAD` at generation time, or `"unknown"` outside a
    /// checkout.
    pub git_sha: String,
    /// Hostname of the generating machine, or `"unknown"`.
    pub hostname: String,
    /// Available hardware parallelism on the generating machine.
    pub threads: usize,
}

impl BenchMeta {
    /// Captures the current environment. Never fails: unobtainable fields
    /// degrade to `"unknown"` / 1 so bench bins work in minimal containers.
    pub fn capture() -> Self {
        Self {
            git_sha: command_line("git", &["rev-parse", "HEAD"]).unwrap_or_else(unknown),
            hostname: command_line("hostname", &[])
                .or_else(|| std::env::var("HOSTNAME").ok().filter(|s| !s.is_empty()))
                .unwrap_or_else(unknown),
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// True when two reports were produced in comparable environments
    /// (same machine, same parallelism) — the precondition for diffing
    /// their medians.
    pub fn comparable_to(&self, other: &BenchMeta) -> bool {
        self.hostname == other.hostname && self.threads == other.threads
    }
}

fn unknown() -> String {
    "unknown".to_string()
}

fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = std::process::Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim().to_string();
    (!line.is_empty()).then_some(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_never_produces_empty_fields() {
        let meta = BenchMeta::capture();
        assert!(!meta.git_sha.is_empty());
        assert!(!meta.hostname.is_empty());
        assert!(meta.threads >= 1);
    }

    #[test]
    fn comparability_requires_same_host_and_threads() {
        let a = BenchMeta {
            git_sha: "aaa".into(),
            hostname: "h1".into(),
            threads: 4,
        };
        let mut b = a.clone();
        b.git_sha = "bbb".into(); // different commit is fine
        assert!(a.comparable_to(&b));
        b.threads = 8;
        assert!(!a.comparable_to(&b));
        b.threads = 4;
        b.hostname = "h2".into();
        assert!(!a.comparable_to(&b));
    }

    #[test]
    fn meta_roundtrips_through_json() {
        let meta = BenchMeta {
            git_sha: "deadbeef".into(),
            hostname: "bench-box".into(),
            threads: 16,
        };
        let json = serde_json::to_string(&meta).expect("serialize");
        let back: BenchMeta = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, meta);
    }
}
