//! Experiment orchestration: run one or all methods on one dataset.

use refil_eval::{scores, Scores};
use refil_fed::{FdilRunner, RunResult};
use refil_telemetry::Telemetry;

use crate::datasets::{DatasetChoice, Scale};
use crate::methods::{build_method, method_config, MethodChoice};

/// One experiment: a dataset at a scale, in canonical or new domain order.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Which dataset.
    pub dataset: DatasetChoice,
    /// Protocol scaling.
    pub scale: Scale,
    /// Use the Table 4 shuffled domain order.
    pub new_order: bool,
    /// Master seed (data generation, protocol, model init).
    pub seed: u64,
}

impl ExperimentSpec {
    /// Canonical-order experiment at the environment-selected scale.
    pub fn new(dataset: DatasetChoice) -> Self {
        Self {
            dataset,
            scale: Scale::from_env(),
            new_order: false,
            seed: 42,
        }
    }

    /// Switches to the Table 4 domain order.
    pub fn with_new_order(mut self, new_order: bool) -> Self {
        self.new_order = new_order;
        self
    }
}

/// One method's outcome on an experiment.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Paper row label.
    pub name: String,
    /// Raw run output (per-domain accuracy matrix, traffic, timeline).
    pub result: RunResult,
    /// Avg / Last / forgetting summary.
    pub scores: Scores,
}

/// Runs one method on an experiment (telemetry disabled).
pub fn run_experiment(spec: &ExperimentSpec, method: MethodChoice) -> MethodResult {
    run_experiment_traced(spec, method, &Telemetry::disabled())
}

/// Runs one method on an experiment, recording the federated loop into
/// `telemetry` (see [`refil_fed::FdilRunner`] for the span hierarchy).
///
/// The worker-thread count follows `REFIL_THREADS` (the [`FdilRunner`]
/// default); results are byte-identical at any thread count.
pub fn run_experiment_traced(
    spec: &ExperimentSpec,
    method: MethodChoice,
    telemetry: &Telemetry,
) -> MethodResult {
    run_experiment_with_threads(spec, method, telemetry, None)
}

/// Like [`run_experiment_traced`], with an explicit worker-thread count.
///
/// `threads = None` keeps the `REFIL_THREADS` default; `Some(0)` uses all
/// available cores; any other value is the exact worker count.
pub fn run_experiment_with_threads(
    spec: &ExperimentSpec,
    method: MethodChoice,
    telemetry: &Telemetry,
    threads: Option<usize>,
) -> MethodResult {
    run_experiment_with_wire(spec, method, telemetry, threads, None)
}

/// Like [`run_experiment_with_threads`], additionally overriding the uplink
/// compression spec (`wire = None` keeps the dataset default, i.e. the
/// identity spec). This is the loopback counterpart of the networked
/// `--wire` flag: same config knob, same byte accounting.
pub fn run_experiment_with_wire(
    spec: &ExperimentSpec,
    method: MethodChoice,
    telemetry: &Telemetry,
    threads: Option<usize>,
    wire: Option<refil_fed::WireConfig>,
) -> MethodResult {
    let dataset = spec
        .dataset
        .generate(&spec.scale, spec.seed, spec.new_order);
    let cfg = method_config(spec.dataset, dataset.num_domains(), spec.seed ^ 7);
    let mut strategy = build_method(method, cfg);
    let mut run_cfg = spec.dataset.run_config(&spec.scale, spec.seed);
    if let Some(w) = wire {
        run_cfg.wire = w;
    }
    let mut runner = FdilRunner::new(run_cfg).telemetry(telemetry);
    if let Some(n) = threads {
        runner = runner.threads(n);
    }
    let result = runner.run(&dataset, strategy.as_mut());
    let s = scores(&result.domain_acc);
    MethodResult {
        name: method.paper_name().to_string(),
        result,
        scores: s,
    }
}

/// Runs all eight methods on an experiment, in the paper's row order.
///
/// Progress is reported through a level-filtered stderr telemetry sink
/// (`REFIL_LOG` controls verbosity); each run takes seconds to minutes at
/// bench scale on one core.
pub fn run_all_methods(spec: &ExperimentSpec) -> Vec<MethodResult> {
    MethodChoice::all()
        .into_iter()
        .map(|m| {
            let telemetry = Telemetry::stderr();
            let start = std::time::Instant::now();
            let r = run_experiment_traced(spec, m, &telemetry);
            telemetry.info(format!(
                "{}: Avg {:.2}%  Last {:.2}%  ({:.1?})",
                r.name,
                r.scores.avg,
                r.scores.last,
                start.elapsed()
            ));
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_runs_finetune() {
        let spec = ExperimentSpec {
            dataset: DatasetChoice::OfficeCaltech10,
            scale: Scale::smoke(),
            new_order: false,
            seed: 1,
        };
        let r = run_experiment(&spec, MethodChoice::Finetune);
        assert_eq!(r.result.domain_acc.len(), 4);
        assert!(r.scores.avg > 0.0);
    }
}
