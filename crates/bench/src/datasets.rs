//! Dataset selection and protocol scaling for the experiment harness.

use refil_data::{
    digits_five, fed_domain_net, office_caltech10, pacs, DatasetSpec, FdilDataset, PresetConfig,
    DIGITS_FIVE_NEW_ORDER, FED_DOMAIN_NET_NEW_ORDER, OFFICE_CALTECH10_NEW_ORDER, PACS_NEW_ORDER,
};
use refil_fed::{IncrementConfig, RunConfig};

/// The paper's four evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetChoice {
    /// Digits-Five (10 classes, 5 domains).
    DigitsFive,
    /// OfficeCaltech10 (10 classes, 4 domains).
    OfficeCaltech10,
    /// PACS (7 classes, 4 domains).
    Pacs,
    /// FedDomainNet (48 classes, 6 domains; Table 6 statistics).
    FedDomainNet,
}

impl DatasetChoice {
    /// All four datasets in the paper's table order.
    pub fn all() -> [DatasetChoice; 4] {
        [
            Self::DigitsFive,
            Self::OfficeCaltech10,
            Self::Pacs,
            Self::FedDomainNet,
        ]
    }

    /// Dataset display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::DigitsFive => "Digits-Five",
            Self::OfficeCaltech10 => "OfficeCaltech10",
            Self::Pacs => "PACS",
            Self::FedDomainNet => "FedDomainNet",
        }
    }

    /// The synthetic spec at the given data scale.
    ///
    /// FedDomainNet spreads its samples over 48 classes x 6 domains, so it
    /// runs at 10x the base data scale to keep per-class counts learnable.
    pub fn spec(self, scale: &Scale) -> DatasetSpec {
        let mult = if self == Self::FedDomainNet {
            10.0
        } else {
            1.0
        };
        let cfg = PresetConfig {
            scale: scale.data_scale * mult,
            feature_dim: 32,
        };
        match self {
            Self::DigitsFive => digits_five(cfg),
            Self::OfficeCaltech10 => office_caltech10(cfg),
            Self::Pacs => pacs(cfg),
            Self::FedDomainNet => fed_domain_net(cfg),
        }
    }

    /// Generates the dataset, optionally in the Table 4 "new domain order".
    pub fn generate(self, scale: &Scale, seed: u64, new_order: bool) -> FdilDataset {
        let ds = self.spec(scale).generate(seed);
        if new_order {
            ds.reordered(&self.new_order())
        } else {
            ds
        }
    }

    /// The Table 4 domain permutation.
    pub fn new_order(self) -> Vec<usize> {
        match self {
            Self::DigitsFive => DIGITS_FIVE_NEW_ORDER.to_vec(),
            Self::OfficeCaltech10 => OFFICE_CALTECH10_NEW_ORDER.to_vec(),
            Self::Pacs => PACS_NEW_ORDER.to_vec(),
            Self::FedDomainNet => FED_DOMAIN_NET_NEW_ORDER.to_vec(),
        }
    }

    /// Per-dataset learning rate (§4.1: 0.03 default, 0.06 OfficeCaltech10,
    /// 0.04 FedDomainNet).
    pub fn lr(self) -> f32 {
        match self {
            Self::OfficeCaltech10 => 0.06,
            Self::FedDomainNet => 0.04,
            _ => 0.03,
        }
    }

    /// The paper's client protocol: 20 start / select 10 / +2 per task, except
    /// OfficeCaltech10 (10 / 5 / +1), scaled by `scale.client_scale`.
    pub fn increment_config(self, scale: &Scale) -> IncrementConfig {
        let (initial, select, inc) = match self {
            Self::OfficeCaltech10 => (10, 5, 1),
            _ => (20, 10, 2),
        };
        let s = scale.client_scale;
        IncrementConfig {
            initial_clients: ((initial as f32 * s).round() as usize).max(3),
            select_per_round: ((select as f32 * s).round() as usize).max(2),
            increment_per_task: ((inc as f32 * s).round() as usize).max(1),
            transition_fraction: 0.8,
            rounds_per_task: scale.rounds,
        }
    }

    /// Full run configuration for this dataset at `scale`.
    pub fn run_config(self, scale: &Scale, seed: u64) -> RunConfig {
        RunConfig {
            increment: self.increment_config(scale),
            local_epochs: scale.epochs,
            batch_size: 32,
            quantity_sigma: 0.6,
            eval_batch: 256,
            dropout_prob: 0.0,
            seed,
            threads: 0,
            net: refil_fed::NetConfig::default(),
            wire: refil_fed::WireConfig::default(),
        }
    }
}

/// Looks up a dataset by (case-insensitive) name.
pub fn dataset_by_name(name: &str) -> Option<DatasetChoice> {
    match name.to_ascii_lowercase().as_str() {
        "digits-five" | "digitsfive" | "digits" => Some(DatasetChoice::DigitsFive),
        "officecaltech10" | "office" => Some(DatasetChoice::OfficeCaltech10),
        "pacs" => Some(DatasetChoice::Pacs),
        "feddomainnet" | "domainnet" => Some(DatasetChoice::FedDomainNet),
        _ => None,
    }
}

/// Protocol scaling knobs: the paper's values divided down to CPU scale.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier on the paper's dataset sizes.
    pub data_scale: f32,
    /// Multiplier on the paper's client counts.
    pub client_scale: f32,
    /// Communication rounds per task (paper: 30).
    pub rounds: usize,
    /// Local epochs per round (paper: 20).
    pub epochs: usize,
}

impl Scale {
    /// The scale the table benches run at (minutes on one CPU core).
    pub fn bench() -> Self {
        Self {
            data_scale: 0.015,
            client_scale: 0.4,
            rounds: 5,
            epochs: 2,
        }
    }

    /// A tiny scale for smoke tests (seconds).
    pub fn smoke() -> Self {
        Self {
            data_scale: 0.008,
            client_scale: 0.3,
            rounds: 3,
            epochs: 1,
        }
    }

    /// The paper's full protocol (for reference / GPU-class machines).
    pub fn paper() -> Self {
        Self {
            data_scale: 1.0,
            client_scale: 1.0,
            rounds: 30,
            epochs: 20,
        }
    }

    /// Reads `REFIL_SCALE` from the environment (`smoke`, `bench`, `paper`),
    /// defaulting to [`Scale::bench`].
    pub fn from_env() -> Self {
        match std::env::var("REFIL_SCALE").as_deref() {
            Ok("smoke") => Self::smoke(),
            Ok("paper") => Self::paper(),
            _ => Self::bench(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(dataset_by_name("pacs"), Some(DatasetChoice::Pacs));
        assert_eq!(
            dataset_by_name("Digits-Five"),
            Some(DatasetChoice::DigitsFive)
        );
        assert_eq!(dataset_by_name("nope"), None);
    }

    #[test]
    fn office_uses_smaller_protocol() {
        let s = Scale::paper();
        let office = DatasetChoice::OfficeCaltech10.increment_config(&s);
        let digits = DatasetChoice::DigitsFive.increment_config(&s);
        assert_eq!(office.initial_clients, 10);
        assert_eq!(digits.initial_clients, 20);
        assert_eq!(office.increment_per_task, 1);
        assert_eq!(digits.increment_per_task, 2);
    }

    #[test]
    fn new_order_generation_permutes() {
        let scale = Scale::smoke();
        let base = DatasetChoice::Pacs.generate(&scale, 1, false);
        let reord = DatasetChoice::Pacs.generate(&scale, 1, true);
        assert_eq!(base.domains[1].name, reord.domains[0].name); // Cartoon first
        assert_eq!(base.domains[0].name, reord.domains[1].name); // Photo second
    }

    #[test]
    fn learning_rates_match_paper() {
        assert_eq!(DatasetChoice::DigitsFive.lr(), 0.03);
        assert_eq!(DatasetChoice::OfficeCaltech10.lr(), 0.06);
        assert_eq!(DatasetChoice::FedDomainNet.lr(), 0.04);
        assert_eq!(DatasetChoice::Pacs.lr(), 0.03);
    }
}
