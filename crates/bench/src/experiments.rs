//! Shared experiment execution with on-disk caching.
//!
//! Tables 1/3 (and 2/4) are different views of the same runs, and Figure 4
//! reuses them as well, so completed runs are cached as JSON under
//! `results/` keyed by domain order and scale.

use std::fs;

use serde::{Deserialize, Serialize};

use refil_eval::Scores;
use refil_fed::RunResult;

use crate::datasets::{DatasetChoice, Scale};
use crate::report::results_dir;
use crate::runner::{run_all_methods, ExperimentSpec, MethodResult};

/// Serializable snapshot of one method's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedMethod {
    /// Paper row label.
    pub name: String,
    /// Raw run output.
    pub result: RunResult,
    /// Summary scores.
    pub scores: Scores,
}

impl From<MethodResult> for CachedMethod {
    fn from(m: MethodResult) -> Self {
        Self {
            name: m.name,
            result: m.result,
            scores: m.scores,
        }
    }
}

/// All methods on all four datasets, one domain order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullResults {
    /// `(dataset name, per-method results)` in the paper's dataset order.
    pub datasets: Vec<(String, Vec<CachedMethod>)>,
}

fn scale_tag() -> String {
    std::env::var("REFIL_SCALE").unwrap_or_else(|_| "bench".into())
}

fn cache_path(new_order: bool) -> std::path::PathBuf {
    let order = if new_order { "new" } else { "canonical" };
    results_dir().join(format!("cache_{order}_{}.json", scale_tag()))
}

/// Runs (or loads from cache) all eight methods on all four datasets.
///
/// Delete `results/cache_*.json` to force recomputation.
pub fn full_results(new_order: bool) -> FullResults {
    let path = cache_path(new_order);
    if let Ok(bytes) = fs::read(&path) {
        if let Ok(cached) = serde_json::from_slice::<FullResults>(&bytes) {
            eprintln!("[refil-bench] loaded cached runs from {}", path.display());
            return cached;
        }
    }
    let mut datasets = Vec::new();
    for ds in DatasetChoice::all() {
        let spec = ExperimentSpec {
            dataset: ds,
            scale: Scale::from_env(),
            new_order,
            seed: 42,
        };
        let results = run_all_methods(&spec);
        datasets.push((
            ds.name().to_string(),
            results.into_iter().map(CachedMethod::from).collect(),
        ));
    }
    let full = FullResults { datasets };
    match serde_json::to_vec(&full) {
        Ok(bytes) => {
            if let Err(e) = fs::write(&path, bytes) {
                eprintln!("[refil-bench] could not cache runs: {e}");
            }
        }
        Err(e) => eprintln!("[refil-bench] could not serialize runs: {e}"),
    }
    full
}

/// The summary table of the paper's Table 1 / Table 2: per dataset, each
/// method's Avg/Last with the Δ columns relative to RefFiL.
pub fn summary_table(full: &FullResults) -> refil_eval::Table {
    use refil_eval::{pct, signed, Table};
    let mut header = vec!["Methods".to_string()];
    for (name, _) in &full.datasets {
        header.push(format!("{name} Avg"));
        header.push("Δ".into());
        header.push(format!("{name} Last"));
        header.push("Δ".into());
    }
    let mut table = Table::new(header);
    let n_methods = full.datasets[0].1.len();
    for mi in 0..n_methods {
        let mut row = vec![full.datasets[0].1[mi].name.clone()];
        for (_, methods) in &full.datasets {
            let reffil = methods.last().expect("RefFiL row last");
            let m = &methods[mi];
            row.push(pct(m.scores.avg));
            row.push(if m.name == reffil.name {
                "-".into()
            } else {
                signed(refil_eval::delta(reffil.scores.avg, m.scores.avg))
            });
            row.push(pct(m.scores.last));
            row.push(if m.name == reffil.name {
                "-".into()
            } else {
                signed(refil_eval::delta(reffil.scores.last, m.scores.last))
            });
        }
        table.row(row);
    }
    table
}

/// The per-step tables of the paper's Table 3 / Table 4: one table per
/// dataset; the column labelled with domain `d` holds the step accuracy
/// after the task that introduced `d`.
pub fn per_step_tables(full: &FullResults) -> Vec<(String, refil_eval::Table)> {
    use refil_eval::{pct, step_accuracies, Table};
    full.datasets
        .iter()
        .map(|(name, methods)| {
            let domains = &methods[0].result.domain_names;
            let mut header = vec!["Methods".to_string()];
            header.extend(domains.iter().cloned());
            header.push("Avg".into());
            let mut table = Table::new(header);
            for m in methods {
                let steps = step_accuracies(&m.result.domain_acc);
                let mut row = vec![m.name.clone()];
                row.extend(steps.iter().map(|&s| pct(s)));
                row.push(pct(m.scores.avg));
                table.row(row);
            }
            (name.clone(), table)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refil_fed::TrafficStats;

    fn fake_full() -> FullResults {
        let mk = |name: &str, acc: Vec<Vec<f32>>| CachedMethod {
            name: name.into(),
            scores: refil_eval::scores(&acc),
            result: RunResult {
                method: name.into(),
                dataset: "d".into(),
                domain_names: vec!["a".into(), "b".into()],
                domain_acc: acc,
                traffic: TrafficStats::default(),
                group_timeline: vec![],
                final_global: vec![],
                telemetry: refil_fed::TelemetrySummary::default(),
                rounds: vec![],
            },
        };
        FullResults {
            datasets: vec![(
                "D".into(),
                vec![
                    mk("Finetune", vec![vec![90.0], vec![40.0, 80.0]]),
                    mk("RefFiL", vec![vec![92.0], vec![70.0, 82.0]]),
                ],
            )],
        }
    }

    #[test]
    fn summary_table_has_delta_columns() {
        let t = summary_table(&fake_full());
        let md = t.to_markdown();
        assert!(md.contains("Finetune"));
        assert!(md.contains("RefFiL"));
        assert!(md.contains('+'), "missing positive delta: {md}");
    }

    #[test]
    fn per_step_tables_have_domain_columns() {
        let ts = per_step_tables(&fake_full());
        assert_eq!(ts.len(), 1);
        let md = ts[0].1.to_markdown();
        assert!(md.contains("| a"), "{md}");
        assert!(md.contains("90.00"));
    }
}
