//! Output handling for the table/figure binaries: print to stdout and save
//! under `results/`.

use std::fs;
use std::path::PathBuf;

/// Directory the benches write their artifacts to.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Prints `markdown` and saves it (plus optional CSV) under `results/<name>.*`.
pub fn emit(name: &str, title: &str, markdown: &str, csv: Option<&str>) {
    println!("\n## {title}\n");
    println!("{markdown}");
    let dir = results_dir();
    if let Err(e) = fs::write(
        dir.join(format!("{name}.md")),
        format!("# {title}\n\n{markdown}"),
    ) {
        eprintln!("[refil-bench] could not write {name}.md: {e}");
    }
    if let Some(c) = csv {
        if let Err(e) = fs::write(dir.join(format!("{name}.csv")), c) {
            eprintln!("[refil-bench] could not write {name}.csv: {e}");
        }
    }
}

/// Saves a raw artifact (e.g. t-SNE point CSV) under `results/<name>`.
pub fn save_raw(name: &str, contents: &str) {
    let dir = results_dir();
    if let Err(e) = fs::write(dir.join(name), contents) {
        eprintln!("[refil-bench] could not write {name}: {e}");
    }
}
