//! Shared plumbing for networked runs: the `serve`/`client` binaries and
//! `run --listen`/`run --connect` all route through this module.
//!
//! A networked run is described by a [`NetSpec`] — dataset, method, scale,
//! seed, and domain order. The server serializes the spec into the
//! `Welcome` frame of the join handshake, so a client needs nothing but an
//! address: it reconstructs the identical dataset, strategy, and
//! [`RunConfig`](refil_fed::RunConfig) from the spec and is then driven
//! entirely by lifecycle frames. Because every input is derived from the
//! spec, a networked run's semantic outputs (accuracies, per-kind wire
//! bytes) are byte-identical to the same-seed in-process run.

use std::time::{Duration, Instant};

use refil_eval::scores;
use refil_fed::{
    client_handshake, connect, run_client, ClientOptions, ClientReport, Endpoint, FdilRunner,
    NetListener, Telemetry,
};
use serde::{Deserialize, Serialize};

use crate::datasets::{dataset_by_name, DatasetChoice, Scale};
use crate::methods::{build_method, method_by_name, method_config, MethodChoice};
use crate::runner::MethodResult;

/// How long a client keeps retrying the initial connect + handshake.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// Everything a client needs to replicate the server's experiment: the
/// run-spec carried in the `Welcome` frame, as a JSON document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Dataset CLI name (accepted by [`dataset_by_name`]).
    pub dataset: String,
    /// Method CLI name (accepted by [`method_by_name`]).
    pub method: String,
    /// Protocol scale name: `smoke`, `bench`, or `paper`.
    pub scale: String,
    /// Master seed (data generation, protocol, model init).
    pub seed: u64,
    /// Use the Table 4 shuffled domain order.
    pub new_order: bool,
}

/// A [`NetSpec`] with its names resolved to harness types.
#[derive(Debug, Clone, Copy)]
pub struct ResolvedSpec {
    /// Which dataset.
    pub dataset: DatasetChoice,
    /// Which method.
    pub method: MethodChoice,
    /// Protocol scaling.
    pub scale: Scale,
}

impl NetSpec {
    /// Builds a spec from resolved choices, stamping the canonical CLI
    /// names so the spec round-trips through its JSON form.
    pub fn new(
        dataset: DatasetChoice,
        method: MethodChoice,
        scale_name: &str,
        seed: u64,
        new_order: bool,
    ) -> Self {
        Self {
            dataset: dataset.name().to_string(),
            method: method.cli_name().to_string(),
            scale: scale_name.to_string(),
            seed,
            new_order,
        }
    }

    /// Serializes the spec for the `Welcome` frame.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("NetSpec serialization cannot fail")
    }

    /// Parses a spec received from a server.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or missing fields.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("malformed run-spec: {e}"))
    }

    /// Resolves the spec's names to harness types.
    ///
    /// # Errors
    ///
    /// Fails if the dataset, method, or scale name is unknown.
    pub fn resolve(&self) -> Result<ResolvedSpec, String> {
        let dataset = dataset_by_name(&self.dataset)
            .ok_or_else(|| format!("run-spec names unknown dataset {:?}", self.dataset))?;
        let method = method_by_name(&self.method)
            .ok_or_else(|| format!("run-spec names unknown method {:?}", self.method))?;
        let scale = scale_by_name(&self.scale)
            .ok_or_else(|| format!("run-spec names unknown scale {:?}", self.scale))?;
        Ok(ResolvedSpec {
            dataset,
            method,
            scale,
        })
    }
}

/// Looks up a protocol scale by name (`smoke`, `bench`, `paper`).
pub fn scale_by_name(name: &str) -> Option<Scale> {
    match name {
        "smoke" => Some(Scale::smoke()),
        "bench" => Some(Scale::bench()),
        "paper" => Some(Scale::paper()),
        _ => None,
    }
}

/// The name of the environment-selected scale (`REFIL_SCALE`, default
/// `bench`) — the server stamps this into the spec it sends to clients.
pub fn scale_name_from_env() -> &'static str {
    match std::env::var("REFIL_SCALE").as_deref() {
        Ok("smoke") => "smoke",
        Ok("paper") => "paper",
        _ => "bench",
    }
}

/// CLI overrides for the server's [`NetConfig`](refil_fed::NetConfig);
/// `None` keeps the config default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetOverrides {
    /// Peers to wait for before the first round (`--min-peers`).
    pub min_peers: Option<usize>,
    /// Per-round collection deadline (`--round-deadline-ms`).
    pub round_deadline_ms: Option<u64>,
    /// Re-join grace when the peer set empties (`--join-grace-ms`).
    pub join_grace_ms: Option<u64>,
    /// Per-round participation fraction (`--sample-fraction`).
    pub sample_fraction: Option<f32>,
    /// Sampling floor (`--min-sample`).
    pub min_sample: Option<usize>,
    /// Uplink compression (`--wire`, e.g. `delta+int8+topk0.25`).
    pub wire: Option<refil_fed::WireConfig>,
}

/// Parses a `--wire` argument: `none` (identity), or any `+`-joined
/// combination of `delta`, `f16`, `int8`, and `topk<fraction>` — the same
/// vocabulary [`CompressionSpec`](refil_fed::CompressionSpec) displays.
///
/// # Errors
///
/// Fails on unknown terms, conflicting quantizers, or an out-of-range
/// top-k fraction.
pub fn parse_wire_arg(arg: &str) -> Result<refil_fed::WireConfig, String> {
    let mut wire = refil_fed::WireConfig::default();
    if arg == "none" || arg == "identity" {
        return Ok(wire);
    }
    for term in arg.split('+') {
        if term == "delta" {
            wire.delta = true;
        } else if term == "f16" || term == "int8" {
            if wire.quant != refil_fed::WireQuant::None {
                return Err(format!("--wire {arg}: more than one quantizer"));
            }
            wire.quant = if term == "f16" {
                refil_fed::WireQuant::F16
            } else {
                refil_fed::WireQuant::Int8
            };
        } else if let Some(frac) = term.strip_prefix("topk") {
            wire.topk_fraction = frac
                .parse::<f32>()
                .map_err(|e| format!("--wire {arg}: bad top-k fraction {frac:?}: {e}"))?;
        } else {
            return Err(format!("--wire {arg}: unknown term {term:?}"));
        }
    }
    if !wire.spec().is_valid() {
        return Err(format!(
            "--wire {arg}: top-k fraction must be in (0, 1], got {}",
            wire.topk_fraction
        ));
    }
    Ok(wire)
}

/// Runs a federation server: binds `addr`, waits for clients, and drives
/// the full FDIL protocol over the socket. Returns the same
/// [`MethodResult`] an in-process run would.
///
/// # Errors
///
/// Fails on an unresolvable spec, a bad address, a bind failure, or
/// network options rejected by config validation.
pub fn serve(
    addr: &str,
    spec: &NetSpec,
    overrides: &NetOverrides,
    threads: Option<usize>,
    telemetry: &Telemetry,
) -> Result<MethodResult, String> {
    let resolved = spec.resolve()?;
    let dataset = resolved
        .dataset
        .generate(&resolved.scale, spec.seed, spec.new_order);
    let mcfg = method_config(resolved.dataset, dataset.num_domains(), spec.seed ^ 7);
    let mut strategy = build_method(resolved.method, mcfg);
    let mut run_cfg = resolved.dataset.run_config(&resolved.scale, spec.seed);
    if let Some(n) = overrides.min_peers {
        run_cfg.net.min_peers = n;
    }
    if let Some(ms) = overrides.round_deadline_ms {
        run_cfg.net.round_deadline_ms = ms;
    }
    if let Some(ms) = overrides.join_grace_ms {
        run_cfg.net.join_grace_ms = ms;
    }
    if let Some(f) = overrides.sample_fraction {
        run_cfg.net.sample_fraction = f;
    }
    if let Some(n) = overrides.min_sample {
        run_cfg.net.min_sample = n;
    }
    if let Some(w) = overrides.wire {
        run_cfg.wire = w;
    }
    run_cfg.validate().map_err(|e| e.to_string())?;

    let endpoint = Endpoint::parse(addr).map_err(|e| e.to_string())?;
    let listener = NetListener::bind(&endpoint).map_err(|e| e.to_string())?;
    telemetry.info(format!(
        "serving {} on {} at {} (waiting for {} peer{})",
        spec.method,
        spec.dataset,
        listener.local_endpoint(),
        run_cfg.net.min_peers,
        if run_cfg.net.min_peers == 1 { "" } else { "s" },
    ));
    let mut runner = FdilRunner::new(run_cfg).telemetry(telemetry);
    if let Some(n) = threads {
        runner = runner.threads(n);
    }
    let result = runner.serve(&dataset, strategy.as_mut(), &listener, &spec.to_json());
    let s = scores(&result.domain_acc);
    Ok(MethodResult {
        name: resolved.method.paper_name().to_string(),
        result,
        scores: s,
    })
}

/// Runs a federation client: connects to `addr`, receives the run-spec in
/// the join handshake, rebuilds the experiment locally, and trains until
/// the server ends the run. Returns the parsed spec and the client's
/// report.
///
/// # Errors
///
/// Fails on connect/handshake errors, an unresolvable spec, or a replica
/// loop failure (link error, idle timeout, protocol violation).
pub fn client(
    addr: &str,
    opts: &ClientOptions,
    idle_ms: Option<u64>,
    telemetry: &Telemetry,
) -> Result<(NetSpec, ClientReport), String> {
    let endpoint = Endpoint::parse(addr).map_err(|e| e.to_string())?;
    let deadline = Instant::now() + CONNECT_TIMEOUT;
    let link = connect(&endpoint, deadline).map_err(|e| format!("connect {addr}: {e}"))?;
    let (peer_id, spec_json, _resume_token, compression) =
        client_handshake(&link, u64::from(std::process::id()), None, deadline)
            .map_err(|e| format!("handshake: {e}"))?;
    let mut opts = *opts;
    opts.compression = compression;
    let spec = NetSpec::from_json(&spec_json)?;
    let resolved = spec.resolve()?;
    telemetry.info(format!(
        "joined as peer {peer_id}: {} on {} (seed {})",
        spec.method, spec.dataset, spec.seed
    ));
    let dataset = resolved
        .dataset
        .generate(&resolved.scale, spec.seed, spec.new_order);
    let mcfg = method_config(resolved.dataset, dataset.num_domains(), spec.seed ^ 7);
    let mut strategy = build_method(resolved.method, mcfg);
    let mut cfg = resolved.dataset.run_config(&resolved.scale, spec.seed);
    if let Some(ms) = idle_ms {
        cfg.net.client_idle_ms = ms;
    }
    let report = run_client(
        &link,
        peer_id,
        &dataset,
        strategy.as_mut(),
        &cfg,
        &opts,
        telemetry,
    )
    .map_err(|e| format!("client loop: {e}"))?;
    Ok((spec, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = NetSpec::new(
            DatasetChoice::Pacs,
            MethodChoice::FedL2pPool,
            "smoke",
            77,
            true,
        );
        let back = NetSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let resolved = back.resolve().unwrap();
        assert_eq!(resolved.dataset, DatasetChoice::Pacs);
        assert_eq!(resolved.method, MethodChoice::FedL2pPool);
    }

    #[test]
    fn every_dataset_and_method_name_round_trips() {
        for d in DatasetChoice::all() {
            assert_eq!(dataset_by_name(d.name()), Some(d), "{:?}", d);
        }
        for m in MethodChoice::all() {
            assert_eq!(method_by_name(m.cli_name()), Some(m), "{:?}", m);
        }
    }

    #[test]
    fn wire_args_parse_to_specs() {
        assert_eq!(
            parse_wire_arg("none").unwrap(),
            refil_fed::WireConfig::default()
        );
        let w = parse_wire_arg("delta+int8+topk0.25").unwrap();
        assert_eq!(w.spec().to_string(), "delta+int8+topk0.25");
        let w = parse_wire_arg("f16").unwrap();
        assert_eq!(w.quant, refil_fed::WireQuant::F16);
        assert!(!w.delta);
        assert!(parse_wire_arg("f16+int8").is_err());
        assert!(parse_wire_arg("topk0").is_err());
        assert!(parse_wire_arg("zstd").is_err());
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut spec = NetSpec::new(DatasetChoice::Pacs, MethodChoice::RefFiL, "bench", 1, false);
        spec.scale = "huge".into();
        assert!(spec.resolve().is_err());
        assert!(NetSpec::from_json("not json").is_err());
    }

    #[test]
    fn served_smoke_run_matches_local_over_unix_socket() {
        let spec = NetSpec::new(
            DatasetChoice::OfficeCaltech10,
            MethodChoice::Finetune,
            "smoke",
            5,
            false,
        );
        let resolved = spec.resolve().unwrap();
        let local_spec = crate::runner::ExperimentSpec {
            dataset: resolved.dataset,
            scale: resolved.scale,
            new_order: false,
            seed: 5,
        };
        let local = crate::runner::run_experiment(&local_spec, resolved.method);

        let dir = std::env::temp_dir().join(format!("refil-netcli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr = format!("unix:{}", dir.join("serve.sock").display());
        let client_addr = addr.clone();
        let handle = std::thread::spawn(move || {
            client(
                &client_addr,
                &ClientOptions::default(),
                None,
                &Telemetry::disabled(),
            )
        });
        let served = serve(
            &addr,
            &spec,
            &NetOverrides::default(),
            None,
            &Telemetry::disabled(),
        )
        .unwrap();
        let (got_spec, report) = handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(got_spec, spec);
        assert_eq!(report.reason, 0);
        assert_eq!(local.result.final_global, served.result.final_global);
        assert_eq!(local.result.domain_acc, served.result.domain_acc);
        assert_eq!(local.result.traffic, served.result.traffic);
    }
}
