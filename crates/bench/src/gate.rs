//! The bench regression gate: diffs two `BENCH_*.json` reports and fails on
//! median regressions beyond a tolerance.
//!
//! Reports are treated generically: any object carrying a `name` (plus
//! optional `shape` / `threads` discriminators) contributes one metric per
//! `*_ns` field and one per ratio field (`speedup`, `*_speedup`,
//! `*_ratio`), so `BENCH_eval.json` records, its `speedups` rows (e.g.
//! `fed/eval/parallel_vs_serial`), `BENCH_kernels.json` kernel rows, and
//! its end-to-end naive/tiled pairs all gate without format-specific code.
//! Time metrics regress when the candidate gets *slower*; ratio metrics
//! regress when the candidate ratio *drops* — a shrinking
//! `parallel_vs_serial` fails the gate even if every raw median held
//! steady. Comparability is enforced through the [`BenchMeta`] header —
//! same hostname and thread budget — unless the caller forces the diff.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::meta::BenchMeta;

/// Why a gate run could not produce a verdict (exit code 2 in the bin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateError {
    /// A report failed to parse or failed schema validation.
    Invalid(String),
    /// Both reports are valid but were produced in incomparable
    /// environments (different host or thread budget).
    Incomparable(String),
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::Invalid(msg) => write!(f, "invalid report: {msg}"),
            GateError::Incomparable(msg) => write!(f, "incomparable reports: {msg}"),
        }
    }
}

impl std::error::Error for GateError {}

/// What a gated metric measures, which fixes its direction of regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A `*_ns` median — bigger is worse.
    TimeNs,
    /// A `speedup` / `*_speedup` / `*_ratio` field — smaller is worse.
    Ratio,
}

/// One metric's before/after in a gate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric key, e.g. `fed/eval/tape_free_serial/median_ns` or
    /// `fed/eval/parallel_vs_serial/speedup`.
    pub name: String,
    /// Whether this is a time median or a ratio.
    pub kind: MetricKind,
    /// Baseline value (nanoseconds for [`MetricKind::TimeNs`], a unitless
    /// ratio for [`MetricKind::Ratio`]).
    pub baseline: f64,
    /// Candidate value, same units as `baseline`.
    pub candidate: f64,
    /// Signed relative worsening, positive = regression: relative slowdown
    /// for time metrics, relative ratio loss for ratio metrics.
    pub delta: f64,
    /// True when `delta` exceeds the tolerance.
    pub regressed: bool,
}

/// Outcome of diffing two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-metric deltas for every key present in both reports, name order.
    pub deltas: Vec<MetricDelta>,
    /// Metric keys present in only one of the reports (renames, new/removed
    /// benches) — reported, never fatal.
    pub unmatched: Vec<String>,
}

impl Comparison {
    /// All metrics whose slowdown exceeded the tolerance.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }
}

fn parse(label: &str, text: &str) -> Result<Value, GateError> {
    serde_json::parse_value(text).map_err(|e| GateError::Invalid(format!("{label}: {e}")))
}

fn meta_of(label: &str, doc: &Value) -> Result<BenchMeta, GateError> {
    let meta = doc
        .get("meta")
        .ok_or_else(|| GateError::Invalid(format!("{label}: missing `meta` header")))?;
    let field = |key: &str| -> Result<String, GateError> {
        meta.get(key)
            .and_then(Value::as_str)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .ok_or_else(|| GateError::Invalid(format!("{label}: meta.{key} missing or empty")))
    };
    let threads = meta
        .get("threads")
        .and_then(Value::as_u64)
        .filter(|&t| t > 0)
        .ok_or_else(|| GateError::Invalid(format!("{label}: meta.threads missing or zero")))?;
    Ok(BenchMeta {
        git_sha: field("git_sha")?,
        hostname: field("hostname")?,
        threads: threads as usize,
    })
}

/// Extracts every `<identity>/<field ending in _ns>` metric from a report.
///
/// Identity is the object's `name`, refined by a `shape` or `threads` field
/// when present, so kernel rows at different shapes and end-to-end rows at
/// different thread counts stay distinct.
pub fn extract_metrics(doc: &Value) -> BTreeMap<String, u64> {
    let mut metrics = BTreeMap::new();
    let mut ratios = BTreeMap::new();
    walk(doc, &mut metrics, &mut ratios);
    metrics
}

/// Extracts every `<identity>/<ratio field>` metric from a report, where a
/// ratio field is named `speedup` or ends in `_speedup` / `_ratio`. These
/// gate in the opposite direction from `*_ns` medians: a *drop* in the
/// candidate ratio is the regression.
pub fn extract_ratios(doc: &Value) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    let mut ratios = BTreeMap::new();
    walk(doc, &mut metrics, &mut ratios);
    ratios
}

fn is_ratio_key(key: &str) -> bool {
    key == "speedup" || key.ends_with("_speedup") || key.ends_with("_ratio")
}

fn walk(v: &Value, metrics: &mut BTreeMap<String, u64>, ratios: &mut BTreeMap<String, f64>) {
    match v {
        Value::Seq(items) => {
            for item in items {
                walk(item, metrics, ratios);
            }
        }
        Value::Map(entries) => {
            let name = v.get("name").and_then(Value::as_str);
            if let Some(name) = name {
                let mut identity = name.to_string();
                if let Some(shape) = v.get("shape").and_then(Value::as_str) {
                    identity.push('@');
                    identity.push_str(shape);
                }
                if let Some(threads) = v.get("threads").and_then(Value::as_u64) {
                    identity.push_str(&format!("@threads={threads}"));
                }
                for (key, val) in entries {
                    if key.ends_with("_ns") {
                        if let Some(ns) = val.as_u64() {
                            metrics.insert(format!("{identity}/{key}"), ns);
                        }
                    } else if is_ratio_key(key) {
                        if let Some(r) = val.as_f64() {
                            ratios.insert(format!("{identity}/{key}"), r);
                        }
                    }
                }
            }
            for (key, val) in entries {
                if key != "meta" {
                    walk(val, metrics, ratios);
                }
            }
        }
        _ => {}
    }
}

/// Validates one report for gating: parses, carries a complete [`BenchMeta`]
/// header, and yields at least one strictly positive `*_ns` metric. Ratio
/// metrics, when present, must be finite and strictly positive; they count
/// toward the returned metric total.
pub fn check_report(label: &str, text: &str) -> Result<usize, GateError> {
    let doc = parse(label, text)?;
    meta_of(label, &doc)?;
    let metrics = extract_metrics(&doc);
    if metrics.is_empty() {
        return Err(GateError::Invalid(format!(
            "{label}: no *_ns metrics found"
        )));
    }
    for (name, ns) in &metrics {
        if *ns == 0 {
            return Err(GateError::Invalid(format!(
                "{label}: metric {name} is zero"
            )));
        }
    }
    let ratios = extract_ratios(&doc);
    for (name, r) in &ratios {
        if !r.is_finite() || *r <= 0.0 {
            return Err(GateError::Invalid(format!(
                "{label}: ratio metric {name} is not a finite positive number"
            )));
        }
    }
    Ok(metrics.len() + ratios.len())
}

/// Diffs `candidate` against `baseline`. `tolerance` is the allowed relative
/// slowdown (0.10 = +10 %); `force` skips the same-environment check.
pub fn compare(
    baseline_text: &str,
    candidate_text: &str,
    tolerance: f64,
    force: bool,
) -> Result<Comparison, GateError> {
    let baseline = parse("baseline", baseline_text)?;
    let candidate = parse("candidate", candidate_text)?;
    let base_meta = meta_of("baseline", &baseline)?;
    let cand_meta = meta_of("candidate", &candidate)?;
    if !force && !base_meta.comparable_to(&cand_meta) {
        return Err(GateError::Incomparable(format!(
            "baseline from {}@{} threads vs candidate from {}@{} threads (use --force to \
             compare anyway)",
            base_meta.hostname, base_meta.threads, cand_meta.hostname, cand_meta.threads
        )));
    }
    let base = extract_metrics(&baseline);
    let cand = extract_metrics(&candidate);
    if base.is_empty() || cand.is_empty() {
        return Err(GateError::Invalid("a report contains no metrics".into()));
    }
    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    for (name, &b) in &base {
        match cand.get(name) {
            Some(&c) => {
                let delta = if b == 0 {
                    0.0
                } else {
                    (c as f64 - b as f64) / b as f64
                };
                deltas.push(MetricDelta {
                    name: name.clone(),
                    kind: MetricKind::TimeNs,
                    baseline: b as f64,
                    candidate: c as f64,
                    delta,
                    regressed: delta > tolerance,
                });
            }
            None => unmatched.push(format!("-{name}")),
        }
    }
    for name in cand.keys() {
        if !base.contains_key(name) {
            unmatched.push(format!("+{name}"));
        }
    }
    let base_ratios = extract_ratios(&baseline);
    let cand_ratios = extract_ratios(&candidate);
    for (name, &b) in &base_ratios {
        match cand_ratios.get(name) {
            Some(&c) => {
                // Ratios regress downward: the delta is the relative loss of
                // speedup, so the same `delta > tolerance` test applies.
                let delta = if b == 0.0 { 0.0 } else { (b - c) / b };
                deltas.push(MetricDelta {
                    name: name.clone(),
                    kind: MetricKind::Ratio,
                    baseline: b,
                    candidate: c,
                    delta,
                    regressed: delta > tolerance,
                });
            }
            None => unmatched.push(format!("-{name}")),
        }
    }
    for name in cand_ratios.keys() {
        if !base_ratios.contains_key(name) {
            unmatched.push(format!("+{name}"));
        }
    }
    deltas.sort_by(|a, b| a.name.cmp(&b.name));
    unmatched.sort();
    Ok(Comparison { deltas, unmatched })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(host: &str, threads: usize, medians: &[(&str, u64)]) -> String {
        let records: Vec<String> = medians
            .iter()
            .map(|(name, ns)| format!("{{\"name\":\"{name}\",\"median_ns\":{ns}}}"))
            .collect();
        format!(
            "{{\"meta\":{{\"git_sha\":\"abc\",\"hostname\":\"{host}\",\"threads\":{threads}}},\
             \"records\":[{}]}}",
            records.join(",")
        )
    }

    #[test]
    fn identical_reports_pass_at_zero_tolerance() {
        let r = report("h", 4, &[("a", 100), ("b", 200)]);
        let cmp = compare(&r, &r, 0.0, false).expect("comparable");
        assert_eq!(cmp.deltas.len(), 2);
        assert_eq!(cmp.regressions().count(), 0);
        assert!(cmp.unmatched.is_empty());
    }

    #[test]
    fn twenty_percent_regression_trips_ten_percent_tolerance() {
        let base = report("h", 4, &[("a", 100), ("b", 200)]);
        let cand = report("h", 4, &[("a", 120), ("b", 205)]);
        let cmp = compare(&base, &cand, 0.10, false).expect("comparable");
        let regressed: Vec<&str> = cmp.regressions().map(|d| d.name.as_str()).collect();
        assert_eq!(regressed, vec!["a/median_ns"]);
        let a = &cmp.deltas[0];
        assert!((a.delta - 0.20).abs() < 1e-9);
    }

    #[test]
    fn improvements_never_regress() {
        let base = report("h", 4, &[("a", 100)]);
        let cand = report("h", 4, &[("a", 50)]);
        let cmp = compare(&base, &cand, 0.0, false).expect("comparable");
        assert_eq!(cmp.regressions().count(), 0);
        assert!(cmp.deltas[0].delta < 0.0);
    }

    #[test]
    fn host_mismatch_is_incomparable_unless_forced() {
        let base = report("h1", 4, &[("a", 100)]);
        let cand = report("h2", 4, &[("a", 100)]);
        assert!(matches!(
            compare(&base, &cand, 0.1, false),
            Err(GateError::Incomparable(_))
        ));
        assert!(compare(&base, &cand, 0.1, true).is_ok());
    }

    #[test]
    fn renamed_metrics_are_reported_not_fatal() {
        let base = report("h", 4, &[("old", 100), ("same", 50)]);
        let cand = report("h", 4, &[("new", 100), ("same", 50)]);
        let cmp = compare(&base, &cand, 0.1, false).expect("comparable");
        assert_eq!(cmp.deltas.len(), 1);
        // `unmatched` is reported in sorted order.
        assert_eq!(
            cmp.unmatched,
            vec!["+new/median_ns".to_string(), "-old/median_ns".to_string()]
        );
    }

    #[test]
    fn check_rejects_missing_meta_zero_metrics_and_garbage() {
        assert!(matches!(
            check_report("x", "not json"),
            Err(GateError::Invalid(_))
        ));
        assert!(matches!(
            check_report("x", "{\"records\":[{\"name\":\"a\",\"median_ns\":1}]}"),
            Err(GateError::Invalid(_))
        ));
        let zero = report("h", 4, &[("a", 0)]);
        assert!(matches!(
            check_report("x", &zero),
            Err(GateError::Invalid(_))
        ));
        let ok = report("h", 4, &[("a", 10)]);
        assert_eq!(check_report("x", &ok).expect("valid"), 1);
    }

    fn ratio_report(host: &str, pairs: &[(&str, u64, f64)]) -> String {
        let records: Vec<String> = pairs
            .iter()
            .map(|(name, ns, sp)| {
                format!("{{\"name\":\"{name}\",\"median_ns\":{ns},\"speedup\":{sp}}}")
            })
            .collect();
        format!(
            "{{\"meta\":{{\"git_sha\":\"abc\",\"hostname\":\"{host}\",\"threads\":1}},\
             \"records\":[{}]}}",
            records.join(",")
        )
    }

    #[test]
    fn ratio_drop_beyond_tolerance_regresses() {
        let base = ratio_report("h", &[("par_vs_ser", 100, 2.0)]);
        let cand = ratio_report("h", &[("par_vs_ser", 100, 1.6)]);
        let cmp = compare(&base, &cand, 0.10, false).expect("comparable");
        let regressed: Vec<&str> = cmp.regressions().map(|d| d.name.as_str()).collect();
        assert_eq!(regressed, vec!["par_vs_ser/speedup"]);
        let d = cmp
            .deltas
            .iter()
            .find(|d| d.kind == MetricKind::Ratio)
            .expect("ratio delta");
        assert!((d.delta - 0.20).abs() < 1e-9, "2.0 -> 1.6 is a 20% loss");
    }

    #[test]
    fn ratio_gain_never_regresses_even_at_zero_tolerance() {
        let base = ratio_report("h", &[("par_vs_ser", 100, 1.5)]);
        let cand = ratio_report("h", &[("par_vs_ser", 100, 2.5)]);
        let cmp = compare(&base, &cand, 0.0, false).expect("comparable");
        assert_eq!(cmp.regressions().count(), 0);
        assert_eq!(cmp.deltas.len(), 2, "one ns metric + one ratio metric");
    }

    #[test]
    fn check_counts_ratios_and_rejects_nonpositive_ones() {
        let ok = ratio_report("h", &[("a", 10, 1.5)]);
        assert_eq!(check_report("x", &ok).expect("valid"), 2);
        let bad = ratio_report("h", &[("a", 10, 0.0)]);
        assert!(matches!(
            check_report("x", &bad),
            Err(GateError::Invalid(_))
        ));
    }

    #[test]
    fn ratio_keys_match_speedup_and_suffixes_only() {
        assert!(is_ratio_key("speedup"));
        assert!(is_ratio_key("fill_speedup"));
        assert!(is_ratio_key("hit_ratio"));
        assert!(!is_ratio_key("speedup_note"));
        assert!(!is_ratio_key("median_ns"));
    }

    #[test]
    fn kernel_shapes_and_end_to_end_threads_stay_distinct() {
        let text = "{\"meta\":{\"git_sha\":\"a\",\"hostname\":\"h\",\"threads\":4},\
            \"kernels\":[\
              {\"name\":\"gemm/tiled\",\"shape\":\"64x64x64\",\"median_ns\":10},\
              {\"name\":\"gemm/tiled\",\"shape\":\"128x128x128\",\"median_ns\":80}],\
            \"end_to_end\":[\
              {\"name\":\"round\",\"threads\":1,\"naive_median_ns\":100,\"tiled_median_ns\":50},\
              {\"name\":\"round\",\"threads\":4,\"naive_median_ns\":60,\"tiled_median_ns\":30}]}";
        let doc = serde_json::parse_value(text).expect("json");
        let metrics = extract_metrics(&doc);
        assert_eq!(metrics["gemm/tiled@64x64x64/median_ns"], 10);
        assert_eq!(metrics["gemm/tiled@128x128x128/median_ns"], 80);
        assert_eq!(metrics["round@threads=1/naive_median_ns"], 100);
        assert_eq!(metrics["round@threads=4/tiled_median_ns"], 30);
        assert_eq!(metrics.len(), 6);
    }
}
