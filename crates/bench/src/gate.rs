//! The bench regression gate: diffs two `BENCH_*.json` reports and fails on
//! median regressions beyond a tolerance.
//!
//! Reports are treated generically: any object carrying a `name` (plus
//! optional `shape` / `threads` discriminators) contributes one metric per
//! `*_ns` field, so `BENCH_eval.json` records, `BENCH_kernels.json` kernel
//! rows, and its end-to-end naive/tiled pairs all gate without
//! format-specific code. Comparability is enforced through the
//! [`BenchMeta`] header — same hostname and thread budget — unless the
//! caller forces the diff.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::meta::BenchMeta;

/// Why a gate run could not produce a verdict (exit code 2 in the bin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateError {
    /// A report failed to parse or failed schema validation.
    Invalid(String),
    /// Both reports are valid but were produced in incomparable
    /// environments (different host or thread budget).
    Incomparable(String),
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::Invalid(msg) => write!(f, "invalid report: {msg}"),
            GateError::Incomparable(msg) => write!(f, "incomparable reports: {msg}"),
        }
    }
}

impl std::error::Error for GateError {}

/// One metric's before/after in a gate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric key, e.g. `fed/eval/tape_free_serial/median_ns`.
    pub name: String,
    /// Baseline median nanoseconds.
    pub baseline_ns: u64,
    /// Candidate median nanoseconds.
    pub candidate_ns: u64,
    /// Signed relative change: `(candidate - baseline) / baseline`.
    /// Positive = slower.
    pub delta: f64,
    /// True when `delta` exceeds the tolerance.
    pub regressed: bool,
}

/// Outcome of diffing two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-metric deltas for every key present in both reports, name order.
    pub deltas: Vec<MetricDelta>,
    /// Metric keys present in only one of the reports (renames, new/removed
    /// benches) — reported, never fatal.
    pub unmatched: Vec<String>,
}

impl Comparison {
    /// All metrics whose slowdown exceeded the tolerance.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }
}

fn parse(label: &str, text: &str) -> Result<Value, GateError> {
    serde_json::parse_value(text).map_err(|e| GateError::Invalid(format!("{label}: {e}")))
}

fn meta_of(label: &str, doc: &Value) -> Result<BenchMeta, GateError> {
    let meta = doc
        .get("meta")
        .ok_or_else(|| GateError::Invalid(format!("{label}: missing `meta` header")))?;
    let field = |key: &str| -> Result<String, GateError> {
        meta.get(key)
            .and_then(Value::as_str)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .ok_or_else(|| GateError::Invalid(format!("{label}: meta.{key} missing or empty")))
    };
    let threads = meta
        .get("threads")
        .and_then(Value::as_u64)
        .filter(|&t| t > 0)
        .ok_or_else(|| GateError::Invalid(format!("{label}: meta.threads missing or zero")))?;
    Ok(BenchMeta {
        git_sha: field("git_sha")?,
        hostname: field("hostname")?,
        threads: threads as usize,
    })
}

/// Extracts every `<identity>/<field ending in _ns>` metric from a report.
///
/// Identity is the object's `name`, refined by a `shape` or `threads` field
/// when present, so kernel rows at different shapes and end-to-end rows at
/// different thread counts stay distinct.
pub fn extract_metrics(doc: &Value) -> BTreeMap<String, u64> {
    let mut metrics = BTreeMap::new();
    walk(doc, &mut metrics);
    metrics
}

fn walk(v: &Value, metrics: &mut BTreeMap<String, u64>) {
    match v {
        Value::Seq(items) => {
            for item in items {
                walk(item, metrics);
            }
        }
        Value::Map(entries) => {
            let name = v.get("name").and_then(Value::as_str);
            if let Some(name) = name {
                let mut identity = name.to_string();
                if let Some(shape) = v.get("shape").and_then(Value::as_str) {
                    identity.push('@');
                    identity.push_str(shape);
                }
                if let Some(threads) = v.get("threads").and_then(Value::as_u64) {
                    identity.push_str(&format!("@threads={threads}"));
                }
                for (key, val) in entries {
                    if key.ends_with("_ns") {
                        if let Some(ns) = val.as_u64() {
                            metrics.insert(format!("{identity}/{key}"), ns);
                        }
                    }
                }
            }
            for (key, val) in entries {
                if key != "meta" {
                    walk(val, metrics);
                }
            }
        }
        _ => {}
    }
}

/// Validates one report for gating: parses, carries a complete [`BenchMeta`]
/// header, and yields at least one strictly positive `*_ns` metric.
pub fn check_report(label: &str, text: &str) -> Result<usize, GateError> {
    let doc = parse(label, text)?;
    meta_of(label, &doc)?;
    let metrics = extract_metrics(&doc);
    if metrics.is_empty() {
        return Err(GateError::Invalid(format!(
            "{label}: no *_ns metrics found"
        )));
    }
    for (name, ns) in &metrics {
        if *ns == 0 {
            return Err(GateError::Invalid(format!(
                "{label}: metric {name} is zero"
            )));
        }
    }
    Ok(metrics.len())
}

/// Diffs `candidate` against `baseline`. `tolerance` is the allowed relative
/// slowdown (0.10 = +10 %); `force` skips the same-environment check.
pub fn compare(
    baseline_text: &str,
    candidate_text: &str,
    tolerance: f64,
    force: bool,
) -> Result<Comparison, GateError> {
    let baseline = parse("baseline", baseline_text)?;
    let candidate = parse("candidate", candidate_text)?;
    let base_meta = meta_of("baseline", &baseline)?;
    let cand_meta = meta_of("candidate", &candidate)?;
    if !force && !base_meta.comparable_to(&cand_meta) {
        return Err(GateError::Incomparable(format!(
            "baseline from {}@{} threads vs candidate from {}@{} threads (use --force to \
             compare anyway)",
            base_meta.hostname, base_meta.threads, cand_meta.hostname, cand_meta.threads
        )));
    }
    let base = extract_metrics(&baseline);
    let cand = extract_metrics(&candidate);
    if base.is_empty() || cand.is_empty() {
        return Err(GateError::Invalid("a report contains no metrics".into()));
    }
    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    for (name, &b) in &base {
        match cand.get(name) {
            Some(&c) => {
                let delta = if b == 0 {
                    0.0
                } else {
                    (c as f64 - b as f64) / b as f64
                };
                deltas.push(MetricDelta {
                    name: name.clone(),
                    baseline_ns: b,
                    candidate_ns: c,
                    delta,
                    regressed: delta > tolerance,
                });
            }
            None => unmatched.push(format!("-{name}")),
        }
    }
    for name in cand.keys() {
        if !base.contains_key(name) {
            unmatched.push(format!("+{name}"));
        }
    }
    Ok(Comparison { deltas, unmatched })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(host: &str, threads: usize, medians: &[(&str, u64)]) -> String {
        let records: Vec<String> = medians
            .iter()
            .map(|(name, ns)| format!("{{\"name\":\"{name}\",\"median_ns\":{ns}}}"))
            .collect();
        format!(
            "{{\"meta\":{{\"git_sha\":\"abc\",\"hostname\":\"{host}\",\"threads\":{threads}}},\
             \"records\":[{}]}}",
            records.join(",")
        )
    }

    #[test]
    fn identical_reports_pass_at_zero_tolerance() {
        let r = report("h", 4, &[("a", 100), ("b", 200)]);
        let cmp = compare(&r, &r, 0.0, false).expect("comparable");
        assert_eq!(cmp.deltas.len(), 2);
        assert_eq!(cmp.regressions().count(), 0);
        assert!(cmp.unmatched.is_empty());
    }

    #[test]
    fn twenty_percent_regression_trips_ten_percent_tolerance() {
        let base = report("h", 4, &[("a", 100), ("b", 200)]);
        let cand = report("h", 4, &[("a", 120), ("b", 205)]);
        let cmp = compare(&base, &cand, 0.10, false).expect("comparable");
        let regressed: Vec<&str> = cmp.regressions().map(|d| d.name.as_str()).collect();
        assert_eq!(regressed, vec!["a/median_ns"]);
        let a = &cmp.deltas[0];
        assert!((a.delta - 0.20).abs() < 1e-9);
    }

    #[test]
    fn improvements_never_regress() {
        let base = report("h", 4, &[("a", 100)]);
        let cand = report("h", 4, &[("a", 50)]);
        let cmp = compare(&base, &cand, 0.0, false).expect("comparable");
        assert_eq!(cmp.regressions().count(), 0);
        assert!(cmp.deltas[0].delta < 0.0);
    }

    #[test]
    fn host_mismatch_is_incomparable_unless_forced() {
        let base = report("h1", 4, &[("a", 100)]);
        let cand = report("h2", 4, &[("a", 100)]);
        assert!(matches!(
            compare(&base, &cand, 0.1, false),
            Err(GateError::Incomparable(_))
        ));
        assert!(compare(&base, &cand, 0.1, true).is_ok());
    }

    #[test]
    fn renamed_metrics_are_reported_not_fatal() {
        let base = report("h", 4, &[("old", 100), ("same", 50)]);
        let cand = report("h", 4, &[("new", 100), ("same", 50)]);
        let cmp = compare(&base, &cand, 0.1, false).expect("comparable");
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(
            cmp.unmatched,
            vec!["-old/median_ns".to_string(), "+new/median_ns".to_string()]
        );
    }

    #[test]
    fn check_rejects_missing_meta_zero_metrics_and_garbage() {
        assert!(matches!(
            check_report("x", "not json"),
            Err(GateError::Invalid(_))
        ));
        assert!(matches!(
            check_report("x", "{\"records\":[{\"name\":\"a\",\"median_ns\":1}]}"),
            Err(GateError::Invalid(_))
        ));
        let zero = report("h", 4, &[("a", 0)]);
        assert!(matches!(
            check_report("x", &zero),
            Err(GateError::Invalid(_))
        ));
        let ok = report("h", 4, &[("a", 10)]);
        assert_eq!(check_report("x", &ok).expect("valid"), 1);
    }

    #[test]
    fn kernel_shapes_and_end_to_end_threads_stay_distinct() {
        let text = "{\"meta\":{\"git_sha\":\"a\",\"hostname\":\"h\",\"threads\":4},\
            \"kernels\":[\
              {\"name\":\"gemm/tiled\",\"shape\":\"64x64x64\",\"median_ns\":10},\
              {\"name\":\"gemm/tiled\",\"shape\":\"128x128x128\",\"median_ns\":80}],\
            \"end_to_end\":[\
              {\"name\":\"round\",\"threads\":1,\"naive_median_ns\":100,\"tiled_median_ns\":50},\
              {\"name\":\"round\",\"threads\":4,\"naive_median_ns\":60,\"tiled_median_ns\":30}]}";
        let doc = serde_json::parse_value(text).expect("json");
        let metrics = extract_metrics(&doc);
        assert_eq!(metrics["gemm/tiled@64x64x64/median_ns"], 10);
        assert_eq!(metrics["gemm/tiled@128x128x128/median_ns"], 80);
        assert_eq!(metrics["round@threads=1/naive_median_ns"], 100);
        assert_eq!(metrics["round@threads=4/tiled_median_ns"], 30);
        assert_eq!(metrics.len(), 6);
    }
}
