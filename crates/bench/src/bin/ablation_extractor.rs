//! Design ablation: the backbone's feature extractor architecture —
//! the residual-MLP stand-in versus the 1-D CNN analogue of the paper's
//! CNN backbone — under the full RefFiL pipeline.

use refil_bench::methods::method_config;
use refil_bench::report::emit;
use refil_bench::{DatasetChoice, Scale};
use refil_continual::MethodConfig;
use refil_core::{RefFiL, RefFiLConfig};
use refil_eval::{pct, scores, Table};
use refil_fed::FdilRunner;
use refil_nn::models::ExtractorKind;

fn main() {
    let ds_choice = DatasetChoice::DigitsFive;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, 42, false);
    let run_cfg = ds_choice.run_config(&scale, 42);
    let base = method_config(ds_choice, dataset.num_domains(), 42 ^ 7);

    let mut table = Table::new(
        ["Extractor", "Params", "Avg", "Last", "Forgetting"]
            .map(String::from)
            .to_vec(),
    );
    for (label, kind) in [
        ("residual MLP (default)", ExtractorKind::ResidualMlp),
        ("1-D CNN", ExtractorKind::Conv),
    ] {
        eprintln!("[ablation_extractor] {label} ...");
        let mut cfg = MethodConfig {
            stable_after_first_task: true,
            ..base
        };
        cfg.backbone.extractor = kind;
        let mut strat = RefFiL::new(RefFiLConfig::new(cfg));
        let n_params = refil_fed::FdilStrategy::init_global(&mut strat).len();
        let res = FdilRunner::new(run_cfg).run(&dataset, &mut strat);
        let s = scores(&res.domain_acc);
        table.row(vec![
            label.into(),
            n_params.to_string(),
            pct(s.avg),
            pct(s.last),
            pct(s.forgetting),
        ]);
    }
    emit(
        "ablation_extractor",
        "Ablation — feature extractor architecture under RefFiL (Digits-Five)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
