//! Regenerates the paper's Figure 6: the detailed per-domain t-SNE view of
//! the global model after the final Digits-Five task — one embedding per
//! domain dataset, per method, with class-separation scores.

use refil_bench::methods::{build_method, method_config, MethodChoice};
use refil_bench::report::{emit, save_raw};
use refil_bench::{DatasetChoice, Scale};
use refil_eval::{separation_score, tsne, Table, TsneConfig};
use refil_fed::FdilRunner;
use refil_nn::Tensor;

const SAMPLES_PER_DOMAIN: usize = 60;

fn main() {
    let ds_choice = DatasetChoice::DigitsFive;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, 42, false);
    let run_cfg = ds_choice.run_config(&scale, 42);
    let cfg = method_config(ds_choice, dataset.num_domains(), 42 ^ 7);

    let methods = [
        MethodChoice::Finetune,
        MethodChoice::FedLwf,
        MethodChoice::FedEwc,
        MethodChoice::FedL2p,
        MethodChoice::FedDualPrompt,
        MethodChoice::RefFiL,
    ];
    let mut header = vec!["Method".to_string()];
    header.extend(dataset.domains.iter().map(|d| d.name.clone()));
    let mut table = Table::new(header);
    for m in methods {
        eprintln!("[fig6] {} ...", m.paper_name());
        let mut strategy = build_method(m, cfg);
        let res = FdilRunner::new(run_cfg).run(&dataset, strategy.as_mut());
        let global = &res.final_global;
        let mut row = vec![m.paper_name().to_string()];
        for dom in &dataset.domains {
            let take: Vec<&refil_data::Sample> = dom.test.iter().take(SAMPLES_PER_DOMAIN).collect();
            let dim = take[0].features.len();
            let mut data = Vec::with_capacity(take.len() * dim);
            for s in &take {
                data.extend_from_slice(&s.features);
            }
            let x = Tensor::from_vec(data, &[take.len(), dim]);
            let emb = strategy.cls_embeddings(global, &x);
            let labels: Vec<usize> = take.iter().map(|s| s.label).collect();
            let coords = tsne(
                &emb,
                &TsneConfig {
                    iterations: 150,
                    ..TsneConfig::default()
                },
            );
            let mut csv = String::from("x,y,class\n");
            for (c, &l) in coords.iter().zip(&labels) {
                csv.push_str(&format!("{},{},{}\n", c[0], c[1], l));
            }
            save_raw(
                &format!(
                    "fig6_{}_{}.csv",
                    m.paper_name().replace('\u{2020}', "_pool"),
                    dom.name
                ),
                &csv,
            );
            row.push(format!("{:.2}", separation_score(&coords, &labels)));
        }
        table.row(row);
    }
    emit(
        "fig6_tsne",
        "Figure 6 — Final-model per-domain t-SNE class-separation on Digits-Five",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
