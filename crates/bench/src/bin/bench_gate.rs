//! Regression gate over `BENCH_*.json` reports.
//!
//! Two modes:
//!
//! ```text
//! bench_gate --check FILE...                     # schema-validate reports
//! bench_gate BASELINE CANDIDATE [--tolerance PCT] [--force]
//! ```
//!
//! The diff mode compares every shared `*_ns` median plus every shared
//! ratio key (`speedup`, `*_speedup`, `*_ratio` — e.g.
//! `fed/eval/parallel_vs_serial`) and exits 1 if any candidate median is
//! more than `--tolerance` percent (default 10) slower than its baseline,
//! or any candidate ratio has *dropped* by more than the same tolerance.
//! Reports from different hosts or thread budgets are refused (exit 2)
//! unless `--force` is given. `--check` validates each file parses,
//! carries a complete `meta` header, and holds at least one positive
//! metric — the per-PR CI guard that committed BENCH files stay
//! machine-readable.

use std::process::ExitCode;

use refil_bench::gate::{check_report, compare, GateError, MetricKind};

const USAGE: &str = "usage:
  bench_gate --check FILE...
  bench_gate BASELINE CANDIDATE [--tolerance PCT] [--force]";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn run_check(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in files {
        match read(path).and_then(|text| check_report(path, &text).map_err(|e| e.to_string())) {
            Ok(n) => println!("{path}: ok ({n} metrics)"),
            Err(e) => {
                eprintln!("{path}: FAIL — {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn run_diff(baseline: &str, candidate: &str, tolerance_pct: f64, force: bool) -> ExitCode {
    let (base_text, cand_text) = match (read(baseline), read(candidate)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    let cmp = match compare(&base_text, &cand_text, tolerance_pct / 100.0, force) {
        Ok(cmp) => cmp,
        Err(e @ GateError::Incomparable(_)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{:<56} {:>12} {:>12} {:>8}",
        "metric", "baseline", "candidate", "delta"
    );
    for d in &cmp.deltas {
        // Time metrics print raw nanoseconds; ratios print as `1.234x`.
        // `delta` is always "positive = worse" regardless of kind.
        let (baseline, candidate) = match d.kind {
            MetricKind::TimeNs => (
                format!("{}", d.baseline as u64),
                format!("{}", d.candidate as u64),
            ),
            MetricKind::Ratio => (
                format!("{:.3}x", d.baseline),
                format!("{:.3}x", d.candidate),
            ),
        };
        println!(
            "{:<56} {:>12} {:>12} {:>+7.1}%{}",
            d.name,
            baseline,
            candidate,
            d.delta * 100.0,
            if d.regressed { "  << REGRESSION" } else { "" }
        );
    }
    for name in &cmp.unmatched {
        println!("{name} (only in one report)");
    }
    let regressions = cmp.regressions().count();
    if regressions > 0 {
        eprintln!(
            "bench_gate: {regressions} metric(s) regressed beyond {tolerance_pct:.1}% tolerance"
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench_gate: {} metric(s) within {tolerance_pct:.1}% tolerance",
            cmp.deltas.len()
        );
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        return run_check(&args[1..]);
    }
    let mut positional: Vec<&str> = Vec::new();
    let mut tolerance_pct = 10.0_f64;
    let mut force = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("bench_gate: --tolerance needs a numeric percent\n{USAGE}");
                    return ExitCode::from(2);
                };
                tolerance_pct = v;
            }
            "--force" => force = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("bench_gate: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => positional.push(path),
        }
        i += 1;
    }
    let [baseline, candidate] = positional[..] else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    run_diff(baseline, candidate, tolerance_pct, force)
}
