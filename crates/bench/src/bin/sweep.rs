//! Internal tuning sweep: explores dataset/method knobs on a digits-like
//! synthetic to find the regime that reproduces the paper's method ordering.

use refil_bench::methods::{build_method, method_config, MethodChoice};
use refil_bench::{DatasetChoice, Scale};
use refil_continual::MethodConfig;
use refil_data::{DatasetSpec, DomainSpec};
use refil_eval::scores;
use refil_fed::FdilRunner;
use refil_telemetry::Telemetry;

struct Knobs {
    collision_spacing: f32,
    shift_max: f32,
    sig_scale: f32,
    stable_scale: f32,
    noise_mul: f32,
}

fn digits_like(k: &Knobs) -> DatasetSpec {
    let noises = [0.15f32, 0.40, 0.70, 0.95, 1.15];
    let names = ["MNIST", "MNIST-M", "USPS", "SVHN", "SYN"];
    let sizes = [825usize, 825, 112, 1099, 375];
    DatasetSpec {
        name: "digits-like".into(),
        classes: 10,
        feature_dim: 32,
        proto_scale: 2.0,
        within_std: 0.45,
        test_fraction: 0.2,
        signature_dim: 6,
        signature_scale: k.sig_scale,
        domains: (0..5)
            .map(|i| {
                let frac = i as f32 / 4.0;
                DomainSpec::new(
                    names[i],
                    sizes[i],
                    noises[i] * k.noise_mul,
                    frac * k.shift_max,
                )
                .with_collision(i as f32 * k.collision_spacing)
            })
            .collect(),
    }
}

fn main() {
    let status = Telemetry::stderr();
    let scale = Scale::bench();
    let knob_sets = [
        Knobs {
            collision_spacing: 0.6,
            shift_max: 0.65,
            sig_scale: 0.3,
            stable_scale: 0.2,
            noise_mul: 1.0,
        },
        Knobs {
            collision_spacing: 0.6,
            shift_max: 1.2,
            sig_scale: 0.3,
            stable_scale: 0.2,
            noise_mul: 1.0,
        },
        Knobs {
            collision_spacing: 0.5,
            shift_max: 0.65,
            sig_scale: 0.6,
            stable_scale: 0.1,
            noise_mul: 1.0,
        },
        Knobs {
            collision_spacing: 0.8,
            shift_max: 0.4,
            sig_scale: 0.6,
            stable_scale: 0.2,
            noise_mul: 1.0,
        },
    ];
    let methods = [
        MethodChoice::Finetune,
        MethodChoice::FedLwf,
        MethodChoice::FedDualPromptPool,
        MethodChoice::RefFiL,
    ];
    for (ki, k) in knob_sets.iter().enumerate() {
        status.info(format!("sweeping knob set {ki}/{}", knob_sets.len()));
        println!(
            "\n=== knobs {ki}: coll {:.2} shift {:.2} sig {:.2} stable {:.2} ===",
            k.collision_spacing, k.shift_max, k.sig_scale, k.stable_scale
        );
        let ds = digits_like(k).generate(42);
        for m in methods {
            let base = method_config(DatasetChoice::DigitsFive, 5, 42 ^ 7);
            let cfg = MethodConfig {
                stable_backbone_scale: k.stable_scale,
                ..base
            };
            let mut strat = build_method(m, cfg);
            let run_cfg = DatasetChoice::DigitsFive.run_config(&scale, 42);
            let res = FdilRunner::new(run_cfg).run(&ds, strat.as_mut());
            let s = scores(&res.domain_acc);
            let fin: Vec<String> = res
                .final_domain_accuracies()
                .iter()
                .map(|a| format!("{a:5.1}"))
                .collect();
            println!(
                "{:<17} Avg {:>6.2} Last {:>6.2} Fgt {:>6.2} | {}",
                m.paper_name(),
                s.avg,
                s.last,
                s.forgetting,
                fin.join(" ")
            );
        }
    }
}
