//! Extension experiment (the paper's future-work direction): streaming data
//! where new tasks bring *both* a new domain and previously-unseen classes.
//!
//! The paper's Limitations section: "federated learning from streaming data
//! presents the additional challenge of sequentially learning from both new
//! domains and new classes." This bench builds such a stream — classes 6–9
//! only exist from the third domain on — and compares Finetune, FedLwF and
//! RefFiL on it.

use refil_bench::methods::{build_method, method_config, MethodChoice};
use refil_bench::report::emit;
use refil_bench::{DatasetChoice, Scale};
use refil_data::{DatasetSpec, DomainSpec};
use refil_eval::{pct, scores, Table};
use refil_fed::FdilRunner;

fn stream_dataset() -> refil_data::FdilDataset {
    // 10 classes; domains 0-1 carry only classes 0-5, domains 2-3 carry all.
    let early: Vec<usize> = (0..10).map(|k| if k < 6 { 140 } else { 0 }).collect();
    let late: Vec<usize> = (0..10).map(|k| if k < 6 { 80 } else { 120 }).collect();
    DatasetSpec {
        name: "DomainClassStream".into(),
        classes: 10,
        feature_dim: 32,
        proto_scale: 2.0,
        within_std: 0.45,
        test_fraction: 0.2,
        signature_dim: 6,
        signature_scale: 0.3,
        domains: vec![
            DomainSpec::new("d0-old-classes", 0, 0.2, 0.05).with_class_counts(early.clone()),
            DomainSpec::new("d1-old-classes", 0, 0.4, 0.3)
                .with_collision(0.6)
                .with_class_counts(early),
            DomainSpec::new("d2-new-classes", 0, 0.7, 0.6)
                .with_collision(1.2)
                .with_class_counts(late.clone()),
            DomainSpec::new("d3-new-classes", 0, 0.9, 0.9)
                .with_collision(1.8)
                .with_class_counts(late),
        ],
    }
    .generate(42)
}

fn main() {
    let dataset = stream_dataset();
    let scale = Scale::from_env();
    // Borrow the Digits-Five protocol (same class count, 10).
    let run_cfg = DatasetChoice::DigitsFive.run_config(&scale, 42);
    let cfg = method_config(DatasetChoice::DigitsFive, dataset.num_domains(), 42 ^ 7);

    let mut table = Table::new(
        [
            "Method",
            "Avg",
            "Last",
            "Forgetting",
            "Final old-class domain acc",
            "Final new-class domain acc",
        ]
        .map(String::from)
        .to_vec(),
    );
    for m in [
        MethodChoice::Finetune,
        MethodChoice::FedLwf,
        MethodChoice::RefFiL,
    ] {
        eprintln!("[class_incremental] {} ...", m.paper_name());
        let mut strategy = build_method(m, cfg);
        let res = FdilRunner::new(run_cfg).run(&dataset, strategy.as_mut());
        let s = scores(&res.domain_acc);
        let fin = res.final_domain_accuracies();
        table.row(vec![
            m.paper_name().into(),
            pct(s.avg),
            pct(s.last),
            pct(s.forgetting),
            pct((fin[0] + fin[1]) / 2.0),
            pct((fin[2] + fin[3]) / 2.0),
        ]);
    }
    emit(
        "extension_class_incremental",
        "Extension — domain + class incremental stream (new classes appear at task 3)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
