//! Quick end-to-end smoke run: all 8 methods on a small Digits-Five.
use refil_bench::{run_all_methods, DatasetChoice, ExperimentSpec, Scale};
use refil_telemetry::Telemetry;

fn main() {
    let status = Telemetry::stderr();
    let spec = ExperimentSpec {
        dataset: DatasetChoice::DigitsFive,
        scale: Scale::smoke(),
        new_order: false,
        seed: 42,
    };
    status.info("smoke run: all methods on Digits-Five at smoke scale");
    let results = run_all_methods(&spec);
    println!("\nMethod            Avg     Last    Forget");
    for r in &results {
        println!(
            "{:<17} {:>6.2}  {:>6.2}  {:>6.2}",
            r.name, r.scores.avg, r.scores.last, r.scores.forgetting
        );
    }
}
