//! Regenerates the paper's Figure 5: t-SNE of the global model's `[CLS]`
//! embeddings over all seen domains after each Digits-Five task step, for
//! every method. Emits per-step point CSVs plus a class-separation score
//! table (higher = clearer decision boundaries, the paper's visual claim).

use refil_bench::methods::{build_method, method_config, MethodChoice};
use refil_bench::report::{emit, save_raw};
use refil_bench::{DatasetChoice, Scale};
use refil_eval::{separation_score, tsne, Table, TsneConfig};
use refil_fed::FdilRunner;
use refil_nn::Tensor;

const SAMPLES_PER_DOMAIN: usize = 25;

fn main() {
    let ds_choice = DatasetChoice::DigitsFive;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, 42, false);
    let run_cfg = ds_choice.run_config(&scale, 42);
    let cfg = method_config(ds_choice, dataset.num_domains(), 42 ^ 7);

    let methods = [
        MethodChoice::Finetune,
        MethodChoice::FedLwf,
        MethodChoice::FedEwc,
        MethodChoice::FedL2p,
        MethodChoice::FedDualPrompt,
        MethodChoice::RefFiL,
    ];
    let mut header = vec!["Method".to_string()];
    for t in 1..=dataset.num_domains() {
        header.push(format!("Task {t}"));
    }
    let mut table = Table::new(header);
    for m in methods {
        eprintln!("[fig5] {} ...", m.paper_name());
        let mut strategy = build_method(m, cfg);
        let res = FdilRunner::new(run_cfg).run(&dataset, strategy.as_mut());
        let global = &res.final_global;
        let mut row = vec![m.paper_name().to_string()];
        for step in 0..dataset.num_domains() {
            let mut points = Vec::new();
            let mut class_labels = Vec::new();
            let mut csv = String::from("x,y,class,domain\n");
            let mut domains_of = Vec::new();
            for d in 0..=step {
                let dom = &dataset.domains[d];
                let take: Vec<&refil_data::Sample> =
                    dom.test.iter().take(SAMPLES_PER_DOMAIN).collect();
                let dim = take[0].features.len();
                let mut data = Vec::with_capacity(take.len() * dim);
                for s in &take {
                    data.extend_from_slice(&s.features);
                }
                let x = Tensor::from_vec(data, &[take.len(), dim]);
                for (e, s) in strategy.cls_embeddings(global, &x).into_iter().zip(&take) {
                    points.push(e);
                    class_labels.push(s.label);
                    domains_of.push(d);
                }
            }
            let coords = tsne(
                &points,
                &TsneConfig {
                    iterations: 150,
                    ..TsneConfig::default()
                },
            );
            for ((c, &l), &d) in coords.iter().zip(&class_labels).zip(&domains_of) {
                csv.push_str(&format!("{},{},{},{}\n", c[0], c[1], l, d));
            }
            save_raw(
                &format!(
                    "fig5_{}_task{}.csv",
                    m.paper_name().replace('\u{2020}', "_pool"),
                    step + 1
                ),
                &csv,
            );
            row.push(format!("{:.2}", separation_score(&coords, &class_labels)));
        }
        table.row(row);
    }
    emit(
        "fig5_tsne",
        "Figure 5 — t-SNE class-separation score per task step on Digits-Five (higher = clearer boundaries)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
