//! Kernel perf recorder: times the GEMM/conv kernels and an end-to-end
//! federated round on the quickstart-like bench config, then writes
//! `BENCH_kernels.json` (median ns per kernel shape, plus naive-vs-tiled
//! speedups) to the repo root so the perf trajectory is recorded in-tree.
//!
//! Run with `cargo run --release --bin bench_kernels`. The end-to-end
//! comparison re-executes this binary as a child with `REFIL_NAIVE_GEMM=1`,
//! which routes `Tensor::matmul`/`bmm` through the pre-tiling branchy kernel
//! — results are byte-identical either way, only wall time differs.

use std::hint::black_box;
use std::process::Command;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use refil_continual::{Finetune, MethodConfig};
use refil_data::{DatasetSpec, DomainSpec};
use refil_fed::{FdilRunner, IncrementConfig, RunConfig};
use refil_nn::gemm::{gemm, gemm_nt, gemm_ref, gemm_ref_branchy, gemm_tn};
use refil_nn::gemm_fast::{gelu_fast, gemm_fast};
use refil_nn::models::BackboneConfig;
use refil_nn::{Graph, Params, Tensor};

#[derive(serde::Serialize)]
struct KernelRecord {
    name: String,
    shape: String,
    median_ns: u64,
}

#[derive(serde::Serialize)]
struct Speedup {
    name: String,
    baseline: String,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct EndToEnd {
    name: String,
    naive_median_ns: u64,
    tiled_median_ns: u64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct Report {
    generated_by: String,
    meta: refil_bench::BenchMeta,
    reps: usize,
    kernels: Vec<KernelRecord>,
    speedups: Vec<Speedup>,
    end_to_end: Vec<EndToEnd>,
}

fn median_block<F: FnMut()>(reps: usize, f: &mut F) -> u64 {
    let mut times: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

const ROUNDS: usize = 5;

fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> u64 {
    for _ in 0..(reps / 10).max(2) {
        f();
    }
    let block = (reps / ROUNDS).max(1);
    (0..ROUNDS)
        .map(|_| median_block(block, &mut f))
        .min()
        .unwrap()
}

/// Time two variants by alternating measurement blocks and keeping each
/// side's best block median. Interleaving means a burst of external CPU
/// contention (this runs on shared machines) skews both sides alike
/// instead of silently inflating whichever variant it landed on.
fn duel_ns<F: FnMut(), G: FnMut()>(reps: usize, mut f: F, mut g: G) -> (u64, u64) {
    for _ in 0..(reps / 10).max(2) {
        f();
        g();
    }
    let block = (reps / ROUNDS).max(1);
    let mut best_f = u64::MAX;
    let mut best_g = u64::MAX;
    for _ in 0..ROUNDS {
        best_f = best_f.min(median_block(block, &mut f));
        best_g = best_g.min(median_block(block, &mut g));
    }
    (best_f, best_g)
}

/// The same small two-domain workload as the `fed/round_parallel` criterion
/// bench: a full Finetune protocol run over 8 clients. `conv = true` swaps
/// in the conv extractor at wider dims, where the round loop spends most of
/// its time inside the kernel layer instead of clustering/eval bookkeeping.
fn round_workload(threads: usize, conv: bool) {
    let feature_dim = if conv { 128 } else { 8 };
    let dataset = DatasetSpec {
        name: "bench".into(),
        classes: 3,
        feature_dim,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.3,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", if conv { 150 } else { 400 }, 0.15, 0.05),
            DomainSpec::new("d1", if conv { 150 } else { 400 }, 0.3, 0.4),
        ],
    }
    .generate(11);
    let backbone = if conv {
        BackboneConfig {
            in_dim: 128,
            extractor_width: 128,
            extractor_depth: 1,
            n_patches: 4,
            token_dim: 32,
            heads: 4,
            blocks: 2,
            classes: 3,
            extractor: refil_nn::models::ExtractorKind::Conv,
        }
    } else {
        BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: refil_nn::models::ExtractorKind::ResidualMlp,
        }
    };
    let method = MethodConfig {
        backbone,
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    };
    let run_cfg = RunConfig {
        increment: IncrementConfig {
            initial_clients: 8,
            select_per_round: 8,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 2,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 128,
        dropout_prob: 0.0,
        seed: 13,
        threads: 0,
        net: Default::default(),
        wire: Default::default(),
    };
    let mut strat = Finetune::new(method);
    black_box(
        FdilRunner::new(run_cfg)
            .threads(threads)
            .run(&dataset, &mut strat),
    );
}

/// Child mode: time the round workload in this process (whose kernel path is
/// fixed by `REFIL_NAIVE_GEMM` at startup) and print the median ns.
fn child_round(threads: usize, reps: usize, conv: bool) {
    println!("{}", median_ns(reps, || round_workload(threads, conv)));
}

fn spawn_round(naive: bool, threads: usize, reps: usize, conv: bool) -> u64 {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("--round")
        .arg(threads.to_string())
        .arg(reps.to_string())
        .arg(if conv { "conv" } else { "mlp" });
    if naive {
        cmd.env("REFIL_NAIVE_GEMM", "1");
    } else {
        cmd.env_remove("REFIL_NAIVE_GEMM");
    }
    let out = cmd.output().expect("spawn bench child");
    assert!(out.status.success(), "bench child failed: {out:?}");
    String::from_utf8_lossy(&out.stdout)
        .trim()
        .parse()
        .expect("child median ns")
}

#[allow(clippy::too_many_arguments)]
fn naive_conv1d_fwd(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    out: &mut [f32],
    b: usize,
    c_in: usize,
    l: usize,
    c_out: usize,
    k: usize,
    pad: usize,
) {
    let l_out = l + 2 * pad - k + 1;
    for bi in 0..b {
        for co in 0..c_out {
            for lo in 0..l_out {
                let mut acc = bias[co];
                for ci in 0..c_in {
                    for kk in 0..k {
                        let xi = lo + kk;
                        if xi < pad || xi - pad >= l {
                            continue;
                        }
                        acc += x[(bi * c_in + ci) * l + (xi - pad)] * w[(co * c_in + ci) * k + kk];
                    }
                }
                out[(bi * c_out + co) * l_out + lo] = acc;
            }
        }
    }
}

fn out_path_from_args(args: &[String]) -> String {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").to_string();
    let mut out = default;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out = path.clone(),
                    None => {
                        eprintln!("bench_kernels: --out needs a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "bench_kernels: unknown argument {other}\nusage: bench_kernels [--out PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 5 && args[1] == "--round" {
        let threads: usize = args[2].parse().expect("threads");
        let reps: usize = args[3].parse().expect("reps");
        child_round(threads, reps, args[4] == "conv");
        return;
    }
    let out_path = out_path_from_args(&args);

    let reps = 200usize;
    let mut rng = StdRng::seed_from_u64(42);
    let mut kernels = Vec::new();
    let mut speedups = Vec::new();

    // GEMM: square stress shape plus the two shapes the quickstart config
    // runs — token projections ([b*t, d] x [d, d]) and the classifier head.
    for (label, m, k, n) in [
        ("128x128x128", 128usize, 128usize, 128usize),
        ("tokens_160x32x32", 160, 32, 32),
        ("classifier_32x32x10", 32, 32, 10),
    ] {
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let mut out = vec![0.0f32; m * n];
        let mut out2 = vec![0.0f32; m * n];
        let (tiled, naive) = duel_ns(
            reps,
            || {
                out.fill(0.0);
                gemm(a.data(), b.data(), &mut out, m, k, n);
                black_box(out[0]);
            },
            || {
                out2.fill(0.0);
                gemm_ref_branchy(a.data(), b.data(), &mut out2, m, k, n);
                black_box(out2[0]);
            },
        );
        kernels.push(KernelRecord {
            name: "nn/gemm/tiled".into(),
            shape: label.into(),
            median_ns: tiled,
        });
        kernels.push(KernelRecord {
            name: "nn/gemm/naive".into(),
            shape: label.into(),
            median_ns: naive,
        });
        speedups.push(Speedup {
            name: format!("nn/gemm/{label}"),
            baseline: "pre-tiling branchy ikj kernel".into(),
            speedup: naive as f64 / tiled as f64,
        });

        // Layout-aware backward kernels at the same logical shape.
        let bt = b.transpose_last();
        let at = a.transpose_last();
        let nt = median_ns(reps, || {
            out.fill(0.0);
            gemm_nt(a.data(), bt.data(), &mut out, m, k, n);
            black_box(out[0]);
        });
        let tn = median_ns(reps, || {
            out.fill(0.0);
            gemm_tn(at.data(), b.data(), &mut out, m, k, n);
            black_box(out[0]);
        });
        kernels.push(KernelRecord {
            name: "nn/gemm_nt".into(),
            shape: label.into(),
            median_ns: nt,
        });
        kernels.push(KernelRecord {
            name: "nn/gemm_tn".into(),
            shape: label.into(),
            median_ns: tn,
        });

        // The `KernelPolicy::Fast` FMA/SIMD microkernel at the same shape,
        // dueled against the bit-exact tiled kernel it replaces when the
        // policy is flipped.
        let mut out_fast = vec![0.0f32; m * n];
        let (fast, tiled_again) = duel_ns(
            reps,
            || {
                out_fast.fill(0.0);
                gemm_fast(a.data(), b.data(), &mut out_fast, m, k, n);
                black_box(out_fast[0]);
            },
            || {
                out.fill(0.0);
                gemm(a.data(), b.data(), &mut out, m, k, n);
                black_box(out[0]);
            },
        );
        kernels.push(KernelRecord {
            name: "nn/gemm_fast".into(),
            shape: label.into(),
            median_ns: fast,
        });
        speedups.push(Speedup {
            name: format!("nn/gemm_fast/{label}"),
            baseline: "bit-exact tiled kernel".into(),
            speedup: tiled_again.min(tiled) as f64 / fast as f64,
        });
    }

    // The fast rational-tanh GELU vs the libm forward it replaces under
    // `KernelPolicy::Fast` — one backbone-realistic activation width.
    {
        let len = 160 * 32;
        let src = Tensor::randn(&[len], 1.0, &mut rng);
        let mut out_fast: Vec<f32> = Vec::with_capacity(len);
        let mut out_exact: Vec<f32> = Vec::with_capacity(len);
        let (fast, libm) = duel_ns(
            reps,
            || {
                out_fast.clear();
                gelu_fast(src.data(), &mut out_fast);
                black_box(out_fast[0]);
            },
            || {
                out_exact.clear();
                const C: f32 = 0.797_884_6;
                out_exact.extend(
                    src.data()
                        .iter()
                        .map(|&x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())),
                );
                black_box(out_exact[0]);
            },
        );
        kernels.push(KernelRecord {
            name: "nn/gelu_fast".into(),
            shape: format!("{len}"),
            median_ns: fast,
        });
        kernels.push(KernelRecord {
            name: "nn/gelu_libm".into(),
            shape: format!("{len}"),
            median_ns: libm,
        });
        speedups.push(Speedup {
            name: "nn/gelu_fast".into(),
            baseline: "libm tanhf gelu forward".into(),
            speedup: libm as f64 / fast as f64,
        });
    }

    // Zero-skip branch before/after, isolated from tiling: same ikj loop,
    // only the `if av == 0.0 { continue; }` differs.
    {
        let (m, k, n) = (128usize, 128usize, 128usize);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let mut out = vec![0.0f32; m * n];
        let mut out2 = vec![0.0f32; m * n];
        let (without_branch, with_branch) = duel_ns(
            reps,
            || {
                out.fill(0.0);
                gemm_ref(a.data(), b.data(), &mut out, m, k, n);
                black_box(out[0]);
            },
            || {
                out2.fill(0.0);
                gemm_ref_branchy(a.data(), b.data(), &mut out2, m, k, n);
                black_box(out2[0]);
            },
        );
        kernels.push(KernelRecord {
            name: "nn/gemm_zero_branch/with_branch".into(),
            shape: "128x128x128".into(),
            median_ns: with_branch,
        });
        kernels.push(KernelRecord {
            name: "nn/gemm_zero_branch/without_branch".into(),
            shape: "128x128x128".into(),
            median_ns: without_branch,
        });
        speedups.push(Speedup {
            name: "nn/gemm_zero_branch/128x128x128".into(),
            baseline: "ikj loop with the av == 0.0 skip".into(),
            speedup: with_branch as f64 / without_branch as f64,
        });
    }

    // conv1d forward: im2col + GEMM vs the old 5-deep nested loop, and the
    // full autodiff backward through the new lowering.
    {
        let (b, c_in, l, c_out, k, pad) = (32usize, 4usize, 32usize, 8usize, 5usize, 2usize);
        let shape = "b32_c4x8_l32_k5".to_string();
        let x = Tensor::randn(&[b, c_in, l], 1.0, &mut rng);
        let w = Tensor::randn(&[c_out, c_in, k], 0.5, &mut rng);
        let bias = Tensor::randn(&[c_out], 0.5, &mut rng);
        let l_out = l + 2 * pad - k + 1;
        let mut out = vec![0.0f32; b * c_out * l_out];
        let (fwd, fwd_naive) = duel_ns(
            reps,
            || {
                let g = Graph::new();
                let xv = g.constant(x.clone());
                let wv = g.constant(w.clone());
                let bv = g.constant(bias.clone());
                black_box(g.value(g.conv1d(xv, wv, bv, pad)));
            },
            || {
                naive_conv1d_fwd(
                    x.data(),
                    w.data(),
                    bias.data(),
                    &mut out,
                    b,
                    c_in,
                    l,
                    c_out,
                    k,
                    pad,
                );
                black_box(out[0]);
            },
        );
        let mut params = Params::new();
        params.insert("x", x.clone(), true);
        params.insert("w", w.clone(), true);
        params.insert("b", bias.clone(), true);
        let bwd = median_ns(reps, || {
            let mut p = params.clone();
            let g = Graph::new();
            let xv = g.param(&p, p.id("x").unwrap());
            let wv = g.param(&p, p.id("w").unwrap());
            let bv = g.param(&p, p.id("b").unwrap());
            let y = g.conv1d(xv, wv, bv, pad);
            let t = g.tanh(y);
            let s = g.sum_all(t);
            g.backward(s, &mut p);
            black_box(&p);
        });
        kernels.push(KernelRecord {
            name: "nn/conv1d_fwd/im2col_gemm".into(),
            shape: shape.clone(),
            median_ns: fwd,
        });
        kernels.push(KernelRecord {
            name: "nn/conv1d_fwd/naive_loop".into(),
            shape: shape.clone(),
            median_ns: fwd_naive,
        });
        kernels.push(KernelRecord {
            name: "nn/conv1d_bwd/fwd_bwd_tape".into(),
            shape: shape.clone(),
            median_ns: bwd,
        });
        speedups.push(Speedup {
            name: format!("nn/conv1d_fwd/{shape}"),
            baseline: "pre-im2col 5-deep nested loop (graph overhead not included)".into(),
            speedup: fwd_naive as f64 / fwd as f64,
        });
    }

    // End-to-end: the same full federated run, old kernels vs new, via
    // child processes so the REFIL_NAIVE_GEMM escape hatch is honored.
    let mut end_to_end = Vec::new();
    for (tag, conv, round_reps) in [("round_parallel", false, 7usize), ("round_conv", true, 3)] {
        for threads in [1usize, 4] {
            // Alternate tiled/naive child runs and keep each side's best,
            // for the same contention-robustness reason as `duel_ns`.
            let mut tiled = u64::MAX;
            let mut naive = u64::MAX;
            for _ in 0..3 {
                tiled = tiled.min(spawn_round(false, threads, round_reps, conv));
                naive = naive.min(spawn_round(true, threads, round_reps, conv));
            }
            end_to_end.push(EndToEnd {
                name: format!("fed/{tag}/threads_{threads}"),
                naive_median_ns: naive,
                tiled_median_ns: tiled,
                speedup: naive as f64 / tiled as f64,
            });
        }
    }

    let report = Report {
        generated_by: "cargo run --release --bin bench_kernels".into(),
        meta: refil_bench::BenchMeta::capture(),
        reps,
        kernels,
        speedups,
        end_to_end,
    };
    for s in &report.speedups {
        println!("{:<40} {:>6.2}x  (vs {})", s.name, s.speedup, s.baseline);
    }
    for e in &report.end_to_end {
        println!(
            "{:<40} {:>6.2}x  (naive {} ns -> tiled {} ns)",
            e.name, e.speedup, e.naive_median_ns, e.tiled_median_ns
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write kernels report");
    println!("wrote {out_path}");
}
