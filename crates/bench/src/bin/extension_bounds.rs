//! Extension experiment: where does RefFiL sit between the lower bound
//! (Finetune), drift-regularized federated optimization (FedProx), and the
//! privacy-violating upper bound (episodic rehearsal)?

use refil_bench::methods::{build_method, method_config, MethodChoice};
use refil_bench::report::emit;
use refil_bench::{DatasetChoice, Scale};
use refil_continual::{FedProx, RehearsalOracle};
use refil_eval::{pct, scores, Table};
use refil_fed::{FdilRunner, FdilStrategy};

fn main() {
    let ds_choice = DatasetChoice::DigitsFive;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, 42, false);
    let run_cfg = ds_choice.run_config(&scale, 42);
    let cfg = method_config(ds_choice, dataset.num_domains(), 42 ^ 7);

    let mut rows: Vec<(String, Box<dyn FdilStrategy>, String)> = vec![
        (
            "Finetune (lower bound)".into(),
            build_method(MethodChoice::Finetune, cfg),
            "no mitigation".into(),
        ),
        (
            "FedProx (mu=0.1)".into(),
            Box::new(FedProx::new(cfg, 0.1)),
            "drift regularization only".into(),
        ),
        (
            "RefFiL (rehearsal-free)".into(),
            build_method(MethodChoice::RefFiL, cfg),
            "prompt memory only (KB of floats)".into(),
        ),
        (
            "Rehearsal oracle (8/class)".into(),
            Box::new(RehearsalOracle::new(cfg, 8)),
            "stores raw samples — violates the setting".into(),
        ),
    ];

    let mut table = Table::new(
        ["Strategy", "Avg", "Last", "Forgetting", "Memory model"]
            .map(String::from)
            .to_vec(),
    );
    for (label, strategy, memory) in &mut rows {
        eprintln!("[bounds] {label} ...");
        let res = FdilRunner::new(run_cfg).run(&dataset, strategy.as_mut());
        let s = scores(&res.domain_acc);
        table.row(vec![
            label.clone(),
            pct(s.avg),
            pct(s.last),
            pct(s.forgetting),
            memory.clone(),
        ]);
    }
    emit(
        "extension_bounds",
        "Extension — RefFiL between the no-mitigation lower bound and the rehearsal upper bound (Digits-Five)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
