//! Eval-path perf recorder: times domain evaluation of a trained RefFiL
//! model through the pre-engine eval loop and the tape-free inference
//! engine, serial and parallel, then writes `BENCH_eval.json` (median ns
//! plus speedups) to the repo root so the perf trajectory is recorded
//! in-tree.
//!
//! Run with `cargo run --release --bin bench_eval`. All measured paths are
//! byte-identical (asserted below and in `tests/inference.rs`); only wall
//! time differs. Three rungs are timed:
//!
//! 1. **baseline** — the per-domain eval loop as it worked before the
//!    inference engine: every batch rebuilds the evaluation context (global
//!    vector loaded into the model parameters), stages features into a
//!    fresh buffer, and runs a taped forward (fresh graph, backward
//!    closures recorded and thrown away).
//! 2. **taped + shared plan** — one context and staging buffer for the
//!    whole sweep, but still a fresh tape per batch. Isolates how much of
//!    the win is plan reuse vs. tape removal.
//! 3. **tape-free** — the shipped path: one reusable `InferenceSession`
//!    whose forward buffers recycle across batches, zero steady-state
//!    allocations.
//!
//! The runner sweep trio is reported separately: `runner_sweep_serial`
//! keeps the pre-pool shape (one forward-plan replay per `eval_batch`
//! chunk, one thread, bit-exact kernels), `runner_sweep_pooled` is the
//! shipped `FdilRunner::evaluate_task` — domain-granularity items on the
//! persistent worker pool, each forwarding its test split in wide
//! cache-blocked multi-RHS batches — under the default bit-exact policy, and
//! `runner_sweep_pooled_fast` is the same pooled sweep under
//! `KernelPolicy::Fast` (FMA/SIMD GEMM + vectorized GELU).
//! `fed/eval/parallel_vs_serial` is the headline ratio — pre-pool serial
//! vs the shipped fast configuration — and
//! `fed/eval/parallel_vs_serial_bitexact` records the policy-neutral
//! pooled-vs-serial ratio alongside it.

use std::hint::black_box;
use std::time::Instant;

use refil_bench::BenchMeta;
use refil_continual::MethodConfig;
use refil_core::{RefFiL, RefFiLConfig};
use refil_data::{DatasetSpec, DomainSpec, FdilDataset, Sample};
use refil_fed::{FdilRunner, FdilStrategy, IncrementConfig, PoolStats, RunConfig, Telemetry};
use refil_nn::models::{BackboneConfig, ExtractorKind};
use refil_nn::{force_taped, Tensor};

#[derive(serde::Serialize)]
struct EvalRecord {
    name: String,
    median_ns: u64,
}

#[derive(serde::Serialize)]
struct Speedup {
    name: String,
    baseline: String,
    speedup: f64,
}

/// One eval-sweep dispatch's per-worker accounting at a given thread count.
/// Busy/idle splits are run-to-run noisy, so no `name` field: `bench_gate`
/// only extracts metrics from named objects, keeping these ungated.
#[derive(serde::Serialize)]
struct Utilization {
    threads: usize,
    pool: PoolStats,
}

#[derive(serde::Serialize)]
struct Report {
    generated_by: String,
    meta: BenchMeta,
    reps: usize,
    eval_samples: usize,
    eval_batches: usize,
    records: Vec<EvalRecord>,
    speedups: Vec<Speedup>,
    utilization: Vec<Utilization>,
}

fn median_block<F: FnMut()>(reps: usize, f: &mut F) -> u64 {
    let mut times: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

const ROUNDS: usize = 5;

/// Time two variants by alternating measurement blocks and keeping each
/// side's best block median, so a burst of external CPU contention skews
/// both sides alike instead of inflating whichever it landed on.
fn duel_ns<F: FnMut(), G: FnMut()>(reps: usize, mut f: F, mut g: G) -> (u64, u64) {
    for _ in 0..(reps / 10).max(2) {
        f();
        g();
    }
    let block = (reps / ROUNDS).max(1);
    let mut best_f = u64::MAX;
    let mut best_g = u64::MAX;
    for _ in 0..ROUNDS {
        best_f = best_f.min(median_block(block, &mut f));
        best_g = best_g.min(median_block(block, &mut g));
    }
    (best_f, best_g)
}

/// The quickstart-like bench workload with a larger test split, so the
/// timed region is dominated by eval forwards rather than setup.
fn dataset() -> FdilDataset {
    DatasetSpec {
        name: "bench_eval".into(),
        classes: 3,
        feature_dim: 8,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.5,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 800, 0.15, 0.05),
            DomainSpec::new("d1", 800, 0.3, 0.4),
        ],
    }
    .generate(11)
}

fn method() -> MethodConfig {
    MethodConfig {
        backbone: BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    }
}

fn run_cfg() -> RunConfig {
    RunConfig {
        increment: IncrementConfig {
            initial_clients: 4,
            select_per_round: 4,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 2,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 16,
        dropout_prob: 0.0,
        seed: 13,
        threads: 0,
        net: Default::default(),
        wire: Default::default(),
    }
}

fn stage(chunk: &[Sample], buf: &mut Vec<f32>) -> Tensor {
    let dim = chunk[0].features.len();
    buf.clear();
    buf.reserve(chunk.len() * dim);
    for s in chunk {
        buf.extend_from_slice(&s.features);
    }
    Tensor::from_vec(std::mem::take(buf), &[chunk.len(), dim])
}

/// The eval loop exactly as it ran before the inference engine: per batch,
/// rebuild the evaluation context (load the global vector into the model),
/// stage features into a fresh buffer, and run one taped forward.
fn eval_baseline(strat: &RefFiL, global: &[f32], ds: &FdilDataset, batch: usize) -> Vec<usize> {
    force_taped(true);
    let mut preds = Vec::new();
    for d in 0..ds.num_domains() {
        for chunk in ds.domains[d].test.chunks(batch) {
            let features = stage(chunk, &mut Vec::new());
            let ctx = strat.eval_ctx(global);
            let mut evaluator = ctx.evaluator();
            preds.extend(evaluator.predict_domain(&features, d));
        }
    }
    force_taped(false);
    preds
}

/// One shared context and staging buffer, fresh tape per batch: the
/// intermediate rung between the baseline and the shipped tape-free path.
fn eval_shared_plan(
    strat: &RefFiL,
    global: &[f32],
    ds: &FdilDataset,
    batch: usize,
    taped: bool,
) -> Vec<usize> {
    force_taped(taped);
    let ctx = strat.eval_ctx(global);
    let mut evaluator = ctx.evaluator();
    let mut staging = Vec::new();
    let mut preds = Vec::new();
    for d in 0..ds.num_domains() {
        for chunk in ds.domains[d].test.chunks(batch) {
            let features = stage(chunk, &mut staging);
            preds.extend(evaluator.predict_domain(&features, d));
            staging = features.into_vec();
        }
    }
    force_taped(false);
    preds
}

fn out_path_from_args() -> String {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json").to_string();
    let mut out = default;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("bench_eval: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("bench_eval: unknown argument {other}\nusage: bench_eval [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let out_path = out_path_from_args();
    let ds = dataset();
    let cfg = run_cfg();
    let mut strat = RefFiL::new(RefFiLConfig::new(method()));
    let res = FdilRunner::new(cfg).run(&ds, &mut strat);
    let global = res.final_global.clone();
    let last_task = ds.num_domains() - 1;
    let eval_samples: usize = ds.domains.iter().map(|d| d.test.len()).sum();
    let eval_batches: usize = ds
        .domains
        .iter()
        .map(|d| d.test.len().div_ceil(cfg.eval_batch))
        .sum();

    let reps = 60usize;
    let mut records = Vec::new();
    let mut speedups = Vec::new();

    // Two serving shapes: `stream` is batch-1 (latency-shaped, where the
    // per-batch costs the engine removes dominate); `batch16` matches the
    // protocol's chunked sweep. The headline speedup is the stream shape;
    // every rung of both shapes is recorded.
    for (tag, batch, headline) in [("stream", 1usize, true), ("batch16", 16, false)] {
        // Every measured path must agree exactly before anything gets timed.
        let baseline_preds = eval_baseline(&strat, &global, &ds, batch);
        let taped_preds = eval_shared_plan(&strat, &global, &ds, batch, true);
        let free_preds = eval_shared_plan(&strat, &global, &ds, batch, false);
        assert_eq!(baseline_preds, taped_preds, "baseline vs taped diverged");
        assert_eq!(taped_preds, free_preds, "taped vs tape-free diverged");

        // Rung 1 vs rung 3, interleaved A/B: the eval-loop speedup.
        let (free_serial, baseline) = duel_ns(
            reps,
            || {
                black_box(eval_shared_plan(&strat, &global, &ds, batch, false));
            },
            || {
                black_box(eval_baseline(&strat, &global, &ds, batch));
            },
        );

        // Rung 2 vs rung 3: isolates tape removal from plan reuse.
        let (free_serial2, taped_shared) = duel_ns(
            reps,
            || {
                black_box(eval_shared_plan(&strat, &global, &ds, batch, false));
            },
            || {
                black_box(eval_shared_plan(&strat, &global, &ds, batch, true));
            },
        );
        let free_best = free_serial.min(free_serial2);

        records.push(EvalRecord {
            name: format!("fed/eval/{tag}/baseline_per_batch_reload_taped"),
            median_ns: baseline,
        });
        records.push(EvalRecord {
            name: format!("fed/eval/{tag}/shared_plan_taped"),
            median_ns: taped_shared,
        });
        records.push(EvalRecord {
            name: format!("fed/eval/{tag}/tape_free_serial"),
            median_ns: free_best,
        });
        let headline_name = if headline {
            "fed/eval/tape_free_vs_baseline".to_string()
        } else {
            format!("fed/eval/{tag}/tape_free_vs_baseline")
        };
        speedups.push(Speedup {
            name: headline_name,
            baseline: format!(
                "pre-engine eval loop at batch {batch} (per-batch context rebuild + taped forward)"
            ),
            speedup: baseline as f64 / free_best as f64,
        });
        speedups.push(Speedup {
            name: format!("fed/eval/{tag}/tape_free_vs_shared_plan_taped"),
            baseline: format!("shared plan at batch {batch}, taped forward per batch"),
            speedup: taped_shared as f64 / free_best as f64,
        });
    }

    // The shipped pooled sweep vs the pre-pool shape. Serial rung: the
    // fine-grained tape-free loop exactly as `evaluate_task` ran before the
    // worker pool — one forward-plan replay per `eval_batch` chunk, one
    // thread. Pooled rung: the current `evaluate_task` at the runner's
    // auto-resolved (core-clamped) thread count, which forwards each
    // domain's test split in wide cache-blocked `[n, dim]` batches so the
    // kernel layer sees multi-RHS GEMMs instead of dozens of thin ones.
    let pooled_runner = FdilRunner::new(cfg);
    let pooled_threads = pooled_runner.effective_threads();

    // Both paths must agree exactly before anything gets timed: derive the
    // per-domain accuracy row from the fine-grained sweep's predictions and
    // compare it bitwise against the pooled sweep's row.
    let serial_preds = eval_shared_plan(&strat, &global, &ds, cfg.eval_batch, false);
    let pooled_row = pooled_runner.evaluate_task(&strat, &global, &ds, last_task);
    let mut serial_row = Vec::new();
    let mut offset = 0usize;
    for d in 0..ds.num_domains() {
        let test = &ds.domains[d].test;
        let correct = test
            .iter()
            .zip(&serial_preds[offset..offset + test.len()])
            .filter(|(s, &p)| s.label == p)
            .count();
        offset += test.len();
        serial_row.push(100.0 * correct as f32 / test.len() as f32);
    }
    assert_eq!(
        serial_row, pooled_row,
        "pooled domain-batched sweep diverged from the fine-grained sweep"
    );

    let (pooled, serial_sweep) = duel_ns(
        reps,
        || {
            black_box(pooled_runner.evaluate_task(&strat, &global, &ds, last_task));
        },
        || {
            black_box(eval_shared_plan(
                &strat,
                &global,
                &ds,
                cfg.eval_batch,
                false,
            ));
        },
    );
    records.push(EvalRecord {
        name: "fed/eval/runner_sweep_serial".into(),
        median_ns: serial_sweep,
    });
    records.push(EvalRecord {
        name: "fed/eval/runner_sweep_pooled".into(),
        median_ns: pooled,
    });
    speedups.push(Speedup {
        name: "fed/eval/parallel_vs_serial_bitexact".into(),
        baseline: format!(
            "pre-pool fine-grained sweep (plan replay per {}-sample chunk, 1 thread) vs pooled \
             domain-batched sweep at {pooled_threads} worker(s), both on bit-exact kernels",
            cfg.eval_batch
        ),
        speedup: serial_sweep as f64 / pooled as f64,
    });

    // The headline rung: the shipped fast configuration — pooled
    // domain-batched sweep with `KernelPolicy::Fast` (FMA/SIMD GEMM
    // microkernels + vectorized rational-tanh GELU) — against the pre-pool
    // serial sweep on the default bit-exact kernels. The fast path changes
    // low-order result bits (documented contract in
    // `crates/nn/src/gemm_fast.rs`), so its accuracy row is checked
    // approximately rather than bitwise.
    refil_nn::set_kernel_policy(refil_nn::KernelPolicy::Fast);
    let fast_row = pooled_runner.evaluate_task(&strat, &global, &ds, last_task);
    for (d, (f, p)) in fast_row.iter().zip(&pooled_row).enumerate() {
        assert!(
            (f - p).abs() <= 1.0,
            "fast-policy accuracy for domain {d} drifted: {f} vs {p}"
        );
    }
    let block = (reps / ROUNDS).max(1);
    let mut pooled_fast = u64::MAX;
    let mut sweep = || {
        black_box(pooled_runner.evaluate_task(&strat, &global, &ds, last_task));
    };
    for _ in 0..ROUNDS {
        pooled_fast = pooled_fast.min(median_block(block, &mut sweep));
    }
    refil_nn::set_kernel_policy(refil_nn::KernelPolicy::BitExact);
    records.push(EvalRecord {
        name: "fed/eval/runner_sweep_pooled_fast".into(),
        median_ns: pooled_fast,
    });
    speedups.push(Speedup {
        name: "fed/eval/parallel_vs_serial".into(),
        baseline: format!(
            "pre-pool fine-grained sweep (plan replay per {}-sample chunk, 1 thread, bit-exact \
             kernels) vs pooled domain-batched sweep at {pooled_threads} worker(s) under \
             KernelPolicy::Fast — the shipped fast configuration",
            cfg.eval_batch
        ),
        speedup: serial_sweep as f64 / pooled_fast as f64,
    });

    // Where the eval sweep's wall time actually goes: per-worker busy/idle
    // accounting from the timeline layer, at 1/2/4 requested threads with
    // core clamping disabled so the pool genuinely fans out even on small
    // hosts. Work is domain-granularity now, so the pool spawns at most one
    // worker per domain, and workers that never run an item record no lane
    // at all — the table shows only participants.
    let mut utilization = Vec::new();
    println!("\nrunner eval sweep utilization (timeline accounting):");
    for threads in [1usize, 2, 4] {
        let telemetry = Telemetry::collecting();
        let runner = FdilRunner::new(cfg)
            .threads(threads)
            .clamp_threads(false)
            .telemetry(&telemetry);
        black_box(runner.evaluate_task(&strat, &global, &ds, last_task)); // warm
        let (_, pool, _) = runner.evaluate_task_profiled(&strat, &global, &ds, last_task);
        let pool = pool.expect("collecting telemetry yields pool stats");
        println!(
            "threads={threads}: wall {:>9} ns, mean utilization {:>5.1}%",
            pool.wall_ns,
            pool.mean_utilization() * 100.0
        );
        println!(
            "  {:>6} {:>12} {:>12} {:>6} {:>6} {:>6}",
            "track", "busy_ns", "idle_ns", "busy%", "items", "steals"
        );
        for w in &pool.workers {
            println!(
                "  {:>6} {:>12} {:>12} {:>5.1}% {:>6} {:>6}",
                w.track,
                w.busy_ns,
                w.idle_ns,
                w.utilization() * 100.0,
                w.items,
                w.steals
            );
        }
        utilization.push(Utilization { threads, pool });
    }

    let report = Report {
        generated_by: "cargo run --release --bin bench_eval".into(),
        meta: BenchMeta::capture(),
        reps,
        eval_samples,
        eval_batches,
        records,
        speedups,
        utilization,
    };
    for r in &report.records {
        println!("{:<48} {:>12} ns", r.name, r.median_ns);
    }
    for s in &report.speedups {
        println!("{:<48} {:>6.2}x  (vs {})", s.name, s.speedup, s.baseline);
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write eval report");
    println!("wrote {out_path}");
}
