//! Federation server: binds an address, waits for client processes to
//! join, and drives the full FDIL protocol over the socket.
//!
//! ```text
//! cargo run --release -p refil-bench --bin serve -- \
//!     --listen tcp:127.0.0.1:7700 --dataset digits --method reffil \
//!     [--seed N] [--new-order] [--min-peers N] [--round-deadline-ms N] \
//!     [--join-grace-ms N] [--sample-fraction F] [--min-sample N] [--threads N] \
//!     [--wire SPEC]
//! ```
//!
//! | flag | meaning |
//! |------|---------|
//! | `--listen <addr>`          | bind address: `tcp:host:port`, `host:port`, or `unix:PATH` |
//! | `--dataset <name>`         | `digits`, `office`, `pacs`, `domainnet` |
//! | `--method <name>`          | `finetune`, `lwf`, `ewc`, `l2p`, `l2p+pool`, `dualprompt`, `dualprompt+pool`, `reffil`, `reffil+prompt` |
//! | `--seed N`                 | master seed (default 42) |
//! | `--new-order`              | Table 4 shuffled domain order |
//! | `--min-peers N`            | clients to wait for before round one (default 1) |
//! | `--round-deadline-ms N`    | per-round straggler deadline (default 30000) |
//! | `--join-grace-ms N`        | wait for re-joins when all peers leave (default 10000) |
//! | `--sample-fraction F`      | per-round participation fraction in (0, 1]; 0 disables sampling (default 0) |
//! | `--min-sample N`           | never sample below N sessions per round (default 0 = 1) |
//! | `--wire SPEC`              | uplink compression, e.g. `delta+int8+topk0.25`, `f16`, `none` (default none) |
//! | `--threads N`              | eval worker threads (0 = all cores) |
//!
//! `REFIL_SCALE=smoke|bench|paper` selects the protocol scale; the server
//! stamps it into the run-spec it hands to joining clients, so clients
//! never need scale flags. Results are byte-identical to the same-seed
//! in-process `run` invocation.

use refil_bench::methods::method_by_name;
use refil_bench::netcli::{parse_wire_arg, scale_name_from_env, serve, NetOverrides, NetSpec};
use refil_bench::{dataset_by_name, DatasetChoice, MethodChoice};
use refil_telemetry::Telemetry;

struct Args {
    listen: String,
    dataset: DatasetChoice,
    method: MethodChoice,
    seed: u64,
    new_order: bool,
    overrides: NetOverrides,
    threads: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve --listen <tcp:host:port|unix:PATH> --dataset <digits|office|pacs|domainnet> --method <finetune|lwf|ewc|l2p|l2p+pool|dualprompt|dualprompt+pool|reffil|reffil+prompt> [--seed N] [--new-order] [--min-peers N] [--round-deadline-ms N] [--join-grace-ms N] [--sample-fraction F] [--min-sample N] [--threads N] [--wire SPEC]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut listen = None;
    let mut dataset = None;
    let mut method = None;
    let mut seed = 42u64;
    let mut new_order = false;
    let mut overrides = NetOverrides::default();
    let mut threads = None;
    let mut args = std::env::args().skip(1);
    fn num<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = Some(args.next().unwrap_or_else(|| usage())),
            "--dataset" => {
                let v = args.next().unwrap_or_else(|| usage());
                dataset = dataset_by_name(&v);
                if dataset.is_none() {
                    eprintln!("unknown dataset {v:?}");
                    usage();
                }
            }
            "--method" => {
                let v = args.next().unwrap_or_else(|| usage());
                method = method_by_name(&v);
                if method.is_none() {
                    eprintln!("unknown method {v:?}");
                    usage();
                }
            }
            "--seed" => seed = num(&mut args),
            "--new-order" => new_order = true,
            "--min-peers" => overrides.min_peers = Some(num(&mut args)),
            "--round-deadline-ms" => overrides.round_deadline_ms = Some(num(&mut args)),
            "--join-grace-ms" => overrides.join_grace_ms = Some(num(&mut args)),
            "--sample-fraction" => overrides.sample_fraction = Some(num(&mut args)),
            "--min-sample" => overrides.min_sample = Some(num(&mut args)),
            "--wire" => {
                let v = args.next().unwrap_or_else(|| usage());
                match parse_wire_arg(&v) {
                    Ok(w) => overrides.wire = Some(w),
                    Err(e) => {
                        eprintln!("{e}");
                        usage();
                    }
                }
            }
            "--threads" => threads = Some(num(&mut args)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    Args {
        listen: listen.unwrap_or_else(|| usage()),
        dataset: dataset.unwrap_or_else(|| usage()),
        method: method.unwrap_or_else(|| usage()),
        seed,
        new_order,
        overrides,
        threads,
    }
}

fn main() {
    let args = parse_args();
    let spec = NetSpec::new(
        args.dataset,
        args.method,
        scale_name_from_env(),
        args.seed,
        args.new_order,
    );
    let telemetry = Telemetry::stderr();
    let r = match serve(
        &args.listen,
        &spec,
        &args.overrides,
        args.threads,
        &telemetry,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    };
    println!("method:      {}", r.name);
    println!("dataset:     {}", r.result.dataset);
    println!("Avg:         {:.2}%", r.scores.avg);
    println!("Last:        {:.2}%", r.scores.last);
    println!("forgetting:  {:.2}%", r.scores.forgetting);
    println!(
        "traffic:     {:.1} MiB over {} rounds",
        r.result.traffic.total_bytes() as f64 / (1024.0 * 1024.0),
        r.result.traffic.rounds
    );
    let late: u64 = r.result.rounds.iter().map(|rr| rr.clients_late).sum();
    println!("late:        {late} session(s) missed their round deadline");
}
