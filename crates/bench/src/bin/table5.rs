//! Regenerates the paper's Table 5: the CDAP / GPL / DPCL ablation on
//! OfficeCaltech10, with Δ columns relative to the Finetune baseline.

use refil_bench::methods::{build_method, build_reffil_variant, method_config, MethodChoice};
use refil_bench::report::emit;
use refil_bench::{DatasetChoice, Scale};
use refil_core::RefFiLFlags;
use refil_eval::{pct, scores, signed, Table};
use refil_fed::FdilRunner;

fn main() {
    let ds_choice = DatasetChoice::OfficeCaltech10;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, 42, false);
    let cfg = method_config(ds_choice, dataset.num_domains(), 42 ^ 7);
    let run_cfg = ds_choice.run_config(&scale, 42);

    // The paper's six rows: baseline, CDAP, GPL, CDAP+GPL, GPL+DPCL, full.
    let rows: Vec<(bool, bool, bool)> = vec![
        (false, false, false),
        (true, false, false),
        (false, true, false),
        (true, true, false),
        (false, true, true),
        (true, true, true),
    ];

    let mut table = Table::new(
        ["CDAP", "GPL", "DPCL", "Avg", "Δ", "Last", "Δ"]
            .map(String::from)
            .to_vec(),
    );
    let mut baseline = None;
    for (cdap, gpl, dpcl) in rows {
        let mut strategy = if !cdap && !gpl && !dpcl {
            // No components = the Finetune baseline, as in the paper.
            build_method(MethodChoice::Finetune, cfg)
        } else {
            build_reffil_variant(
                cfg,
                RefFiLFlags {
                    use_cdap: cdap,
                    use_gpl: gpl,
                    use_dpcl: dpcl,
                },
            )
        };
        eprintln!("[table5] CDAP={cdap} GPL={gpl} DPCL={dpcl} ...");
        let res = FdilRunner::new(run_cfg).run(&dataset, strategy.as_mut());
        let s = scores(&res.domain_acc);
        let base = *baseline.get_or_insert(s);
        let mark = |b: bool| if b { "✓" } else { " " }.to_string();
        table.row(vec![
            mark(cdap),
            mark(gpl),
            mark(dpcl),
            pct(s.avg),
            if s == base {
                "-".into()
            } else {
                signed(s.avg - base.avg)
            },
            pct(s.last),
            if s == base {
                "-".into()
            } else {
                signed(s.last - base.last)
            },
        ]);
    }
    emit(
        "table5",
        "Table 5 — Ablation of RefFiL components on OfficeCaltech10 (Δ vs. Finetune)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
