//! Extension analysis: per-class confusion of the final global model and the
//! backward-transfer metric, comparing Finetune and RefFiL on Digits-Five.
//! Shows *which* classes the forgetting destroys and how much RefFiL's
//! prompts repair.

use refil_bench::methods::{build_method, method_config, MethodChoice};
use refil_bench::report::emit;
use refil_bench::{DatasetChoice, Scale};
use refil_eval::{backward_transfer, pct, ConfusionMatrix, Table};
use refil_fed::FdilRunner;
use refil_nn::Tensor;

fn main() {
    let ds_choice = DatasetChoice::DigitsFive;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, 42, false);
    let run_cfg = ds_choice.run_config(&scale, 42);
    let cfg = method_config(ds_choice, dataset.num_domains(), 42 ^ 7);

    let mut table = Table::new(
        [
            "Method",
            "BWT",
            "Domain-0 acc",
            "Worst confusion (true→pred)",
            "Count",
        ]
        .map(String::from)
        .to_vec(),
    );
    for m in [MethodChoice::Finetune, MethodChoice::RefFiL] {
        eprintln!("[confusion] {} ...", m.paper_name());
        let mut strategy = build_method(m, cfg);
        let res = FdilRunner::new(run_cfg).run(&dataset, strategy.as_mut());
        let bwt = backward_transfer(&res.domain_acc);

        // Confusion on the *first* domain with the final model — where
        // forgetting shows.
        let mut cm = ConfusionMatrix::new(dataset.classes);
        for chunk in dataset.domains[0].test.chunks(256) {
            let dim = chunk[0].features.len();
            let mut data = Vec::with_capacity(chunk.len() * dim);
            for s in chunk {
                data.extend_from_slice(&s.features);
            }
            let x = Tensor::from_vec(data, &[chunk.len(), dim]);
            let preds = strategy.predict_domain(&res.final_global, &x, 0);
            let truths: Vec<usize> = chunk.iter().map(|s| s.label).collect();
            cm.record_batch(&truths, &preds);
        }
        let worst = cm.worst_confusion();
        table.row(vec![
            m.paper_name().into(),
            format!("{bwt:+.2}"),
            pct(cm.accuracy()),
            worst.map_or("-".into(), |(t, p, _)| format!("{t}→{p}")),
            worst.map_or("-".into(), |(_, _, c)| c.to_string()),
        ]);
    }
    emit(
        "confusion",
        "Extension — backward transfer and final-model confusion on the first domain (Digits-Five)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
