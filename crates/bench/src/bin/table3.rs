//! Regenerates the paper's Table 3: per-step accuracy (the column labelled
//! with a domain is the accuracy over all seen domains after that domain's
//! task), canonical order, all four datasets.

use refil_bench::report::emit;
use refil_bench::{full_results, per_step_tables};

fn main() {
    let full = full_results(false);
    for (name, table) in per_step_tables(&full) {
        let slug = name.to_ascii_lowercase().replace(['-', ' '], "_");
        emit(
            &format!("table3_{slug}"),
            &format!("Table 3 — Task 1..T step accuracies on {name} (canonical order)"),
            &table.to_markdown(),
            Some(&table.to_csv()),
        );
    }
}
