//! Design ablation beyond the paper: the balanced prompt averaging of Eq. 2
//! versus data-size-weighted sharing, where resource-rich clients dominate
//! the global prompt pool — the bias Eq. 2's balanced averaging prevents.

use refil_bench::methods::method_config;
use refil_bench::report::emit;
use refil_bench::{DatasetChoice, Scale};
use refil_core::{RefFiL, RefFiLConfig};
use refil_eval::{pct, scores, Table};
use refil_fed::FdilRunner;

fn main() {
    let ds_choice = DatasetChoice::OfficeCaltech10;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, 42, false);
    let run_cfg = ds_choice.run_config(&scale, 42);
    let base = method_config(ds_choice, dataset.num_domains(), 42 ^ 7);
    let prompt_cfg = refil_continual::MethodConfig {
        stable_after_first_task: true,
        ..base
    };

    let variants = [
        ("balanced (paper, Eq. 2)", false),
        ("data-size weighted", true),
    ];
    let mut table = Table::new(
        [
            "Prompt sharing",
            "Avg",
            "Last",
            "Forgetting",
            "Uploads stored",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (label, weighted) in variants {
        eprintln!("[ablation_prompt_weighting] {label} ...");
        let mut strat =
            RefFiL::new(RefFiLConfig::new(prompt_cfg).with_weighted_prompt_sharing(weighted));
        let res = FdilRunner::new(run_cfg).run(&dataset, &mut strat);
        let s = scores(&res.domain_acc);
        table.row(vec![
            label.into(),
            pct(s.avg),
            pct(s.last),
            pct(s.forgetting),
            strat.prompt_store().total_reps().to_string(),
        ]);
    }
    emit(
        "ablation_prompt_weighting",
        "Ablation — balanced vs. data-size-weighted prompt sharing (RefFiL on OfficeCaltech10)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
