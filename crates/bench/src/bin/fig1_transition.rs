//! Regenerates the paper's Figure 1 (a vs. b): the client-group composition
//! timeline under a cliff-style transition (every client switches at the
//! task boundary) versus RefFiL's gradual transition (80 % of clients move
//! at random rounds, new clients join over time).

use refil_bench::report::emit;
use refil_eval::Table;
use refil_fed::{build_schedule, IncrementConfig};

fn timeline(cfg: &IncrementConfig, label: &str) -> Table {
    let schedules = build_schedule(cfg, 3, 42);
    let mut table = Table::new(
        [
            "Setting",
            "Task",
            "Round",
            "U_o (old)",
            "U_b (between)",
            "U_n (new)",
            "Total",
        ]
        .map(String::from)
        .to_vec(),
    );
    for s in &schedules {
        for round in [0, cfg.rounds_per_task / 2, cfg.rounds_per_task - 1] {
            let (o, b, n) = s.group_sizes(round);
            table.row(vec![
                label.into(),
                (s.task + 1).to_string(),
                (round + 1).to_string(),
                o.to_string(),
                b.to_string(),
                n.to_string(),
                (o + b + n).to_string(),
            ]);
        }
    }
    table
}

fn main() {
    let gradual = IncrementConfig {
        initial_clients: 20,
        select_per_round: 10,
        increment_per_task: 2,
        transition_fraction: 0.8,
        rounds_per_task: 10,
    };
    // Fig. 1a: the common FCL setting — everyone transitions immediately.
    let cliff = IncrementConfig {
        transition_fraction: 1.0,
        increment_per_task: 0,
        ..gradual
    };

    let mut md = String::new();
    md.push_str(&timeline(&cliff, "cliff (Fig. 1a)").to_markdown());
    md.push('\n');
    md.push_str(&timeline(&gradual, "gradual (Fig. 1b)").to_markdown());
    emit(
        "fig1_transition",
        "Figure 1 — Client-group timeline: cliff vs. gradual task transition",
        &md,
        None,
    );
}
