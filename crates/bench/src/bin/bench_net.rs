//! Reactor scaling recorder: times full served federation runs with the
//! clients simulated in-process (all pumped from a single thread), at
//! growing peer counts, then writes `BENCH_net.json` (median ns per run,
//! rounds/sec, and the observed peak thread count) to the repo root so the
//! networking trajectory is recorded in-tree.
//!
//! Run with `cargo run --release -p refil-bench --bin bench_net`. The
//! server side is the single-threaded poll reactor: every peer count is
//! served by the same one accept/collect loop, so `peak_threads` stays
//! constant across the sweep — that flatness (pinned hard in
//! `tests/reactor.rs`) is the property this report tracks over time, next
//! to the raw round throughput.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use refil_bench::BenchMeta;
use refil_continual::{Finetune, MethodConfig};
use refil_data::{DatasetSpec, DomainSpec, FdilDataset};
use refil_fed::{
    client_handshake, connect, process_thread_count, run_clients_pumped, ClientOptions, Endpoint,
    FdilRunner, FdilStrategy, IncrementConfig, Link, NetListener, RunConfig, Telemetry,
};
use refil_nn::models::{BackboneConfig, ExtractorKind};

#[derive(serde::Serialize)]
struct NetRecord {
    name: String,
    median_ns: u64,
}

/// Per-peer-count shape of one served run. No `name` field: `bench_gate`
/// only extracts metrics from named objects, so the run-to-run-noisy
/// thread/throughput numbers ride along ungated.
#[derive(serde::Serialize)]
struct RunShape {
    clients: usize,
    rounds: u64,
    rounds_per_sec: f64,
    peak_threads: usize,
}

#[derive(serde::Serialize)]
struct Report {
    generated_by: String,
    meta: BenchMeta,
    reps: usize,
    records: Vec<NetRecord>,
    runs: Vec<RunShape>,
}

fn dataset() -> FdilDataset {
    DatasetSpec {
        name: "bench_net".into(),
        classes: 3,
        feature_dim: 6,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.3,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 60, 0.15, 0.05),
            DomainSpec::new("d1", 60, 0.3, 0.4),
        ],
    }
    .generate(7)
}

fn build_strategy() -> Box<dyn FdilStrategy> {
    Box::new(Finetune::new(MethodConfig {
        backbone: BackboneConfig {
            in_dim: 6,
            extractor_width: 8,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    }))
}

fn run_cfg() -> RunConfig {
    RunConfig {
        increment: IncrementConfig {
            initial_clients: 6,
            select_per_round: 4,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 2,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 128,
        dropout_prob: 0.0,
        seed: 41,
        threads: 1,
        net: Default::default(),
        wire: Default::default(),
    }
}

/// One full served run with `n_clients` pumped from a single client-side
/// thread. Returns the wall time of the serve (bind → result), the number
/// of protocol rounds driven, and the peak process thread count observed.
fn served_run(n_clients: usize) -> (u64, u64, usize) {
    let listener = NetListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind");
    let addr = listener.local_endpoint().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicUsize::new(0));
    let sampler = {
        let (stop, peak) = (Arc::clone(&stop), Arc::clone(&peak));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Some(n) = process_thread_count() {
                    peak.fetch_max(n, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let pump = std::thread::spawn(move || {
        let ds = dataset();
        let cfg = run_cfg();
        let endpoint = Endpoint::parse(&addr).expect("pump address");
        let deadline = Instant::now() + Duration::from_secs(120);
        let mut links: Vec<Box<dyn Link>> = Vec::with_capacity(n_clients);
        let mut peer_ids = Vec::with_capacity(n_clients);
        for nonce in 0..n_clients {
            let link = connect(&endpoint, deadline).expect("pump connect");
            let (peer_id, _spec, _token, _compression) =
                client_handshake(&link, nonce as u64, None, deadline).expect("pump handshake");
            links.push(Box::new(link));
            peer_ids.push(peer_id);
        }
        let mut strategies: Vec<Box<dyn FdilStrategy>> =
            (0..n_clients).map(|_| build_strategy()).collect();
        for report in run_clients_pumped(
            &links,
            &peer_ids,
            &mut strategies,
            &ds,
            &cfg,
            &ClientOptions::default(),
            &Telemetry::disabled(),
        ) {
            assert_eq!(report.expect("client replica").reason, 0);
        }
    });

    let ds = dataset();
    let mut cfg = run_cfg();
    cfg.net.min_peers = n_clients;
    let mut strat = build_strategy();
    let t = Instant::now();
    let result = black_box(FdilRunner::new(cfg).threads(1).serve(
        &ds,
        strat.as_mut(),
        &listener,
        "bench_net",
    ));
    let elapsed = t.elapsed().as_nanos() as u64;
    pump.join().expect("pump thread");
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler thread");
    (
        elapsed,
        result.traffic.rounds as u64,
        peak.load(Ordering::Relaxed),
    )
}

fn out_path_from_args() -> String {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json").to_string();
    let mut out = default;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("bench_net: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("bench_net: unknown argument {other}\nusage: bench_net [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let out_path = out_path_from_args();
    let reps = 5usize;
    let mut records = Vec::new();
    let mut runs = Vec::new();

    for n_clients in [4usize, 64, 256] {
        served_run(n_clients); // warm: page in code, settle the allocator
        let mut times = Vec::with_capacity(reps);
        let mut rounds = 0u64;
        let mut peak_threads = 0usize;
        for _ in 0..reps {
            let (ns, r, peak) = served_run(n_clients);
            times.push(ns);
            rounds = r;
            peak_threads = peak_threads.max(peak);
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        records.push(NetRecord {
            name: format!("fed/net/reactor/serve_{n_clients}_clients"),
            median_ns: median,
        });
        runs.push(RunShape {
            clients: n_clients,
            rounds,
            rounds_per_sec: rounds as f64 * 1e9 / median as f64,
            peak_threads,
        });
    }

    let report = Report {
        generated_by: "cargo run --release -p refil-bench --bin bench_net".into(),
        meta: BenchMeta::capture(),
        reps,
        records,
        runs,
    };
    for (r, shape) in report.records.iter().zip(&report.runs) {
        println!(
            "{:<40} {:>12} ns  ({:.1} rounds/sec, peak {} threads)",
            r.name, r.median_ns, shape.rounds_per_sec, shape.peak_threads
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write net report");
    println!("wrote {out_path}");
}
