//! Regenerates the paper's Table 1: Avg/Last summary across the four
//! datasets (canonical domain order), with Δ columns relative to RefFiL.

use refil_bench::report::emit;
use refil_bench::{full_results, summary_table};

fn main() {
    let full = full_results(false);
    let table = summary_table(&full);
    emit(
        "table1",
        "Table 1 — Summarised results on four datasets (canonical domain order)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
