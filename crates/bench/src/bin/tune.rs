//! Internal tuning harness: all 8 methods, chosen dataset/scale.
use refil_bench::{dataset_by_name, run_all_methods, DatasetChoice, ExperimentSpec, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ds = args
        .get(1)
        .and_then(|s| dataset_by_name(s))
        .unwrap_or(DatasetChoice::DigitsFive);
    let spec = ExperimentSpec {
        dataset: ds,
        scale: Scale::from_env(),
        new_order: false,
        seed: 42,
    };
    let results = run_all_methods(&spec);
    println!("\nMethod            Avg     Last    Forget  | final per-domain");
    for r in &results {
        let fin: Vec<String> = r
            .result
            .final_domain_accuracies()
            .iter()
            .map(|a| format!("{a:5.1}"))
            .collect();
        println!(
            "{:<17} {:>6.2}  {:>6.2}  {:>6.2}  | {}",
            r.name,
            r.scores.avg,
            r.scores.last,
            r.scores.forgetting,
            fin.join(" ")
        );
    }
}
