//! Regenerates the paper's Table 4: per-step accuracies under the shuffled
//! "new domain order".

use refil_bench::report::emit;
use refil_bench::{full_results, per_step_tables};

fn main() {
    let full = full_results(true);
    for (name, table) in per_step_tables(&full) {
        let slug = name.to_ascii_lowercase().replace(['-', ' '], "_");
        emit(
            &format!("table4_{slug}"),
            &format!("Table 4 — Task 1..T step accuracies on {name} (new domain order)"),
            &table.to_markdown(),
            Some(&table.to_csv()),
        );
    }
}
