//! Federation client: connects to a running `serve` process, receives the
//! run-spec in the join handshake, rebuilds the experiment locally, and
//! trains the sessions the server assigns until the run ends.
//!
//! ```text
//! cargo run --release -p refil-bench --bin client -- \
//!     --connect tcp:127.0.0.1:7700 [--idle-ms N] [--train-delay-ms N] \
//!     [--leave-after N] [--abort-after N]
//! ```
//!
//! | flag | meaning |
//! |------|---------|
//! | `--connect <addr>`    | server address: `tcp:host:port`, `host:port`, or `unix:PATH` |
//! | `--idle-ms N`         | give up if the server stays silent this long (default 120000) |
//! | `--train-delay-ms N`  | sleep before sending each round's results (straggler testing) |
//! | `--leave-after N`     | announce a voluntary leave after N trained sessions |
//! | `--abort-after N`     | drop the connection on the Nth round start (crash testing) |
//!
//! No dataset/method/seed flags: everything is derived from the server's
//! spec, so a client cannot be misconfigured into divergence.

use refil_bench::netcli::client;
use refil_fed::ClientOptions;
use refil_telemetry::Telemetry;

struct Args {
    connect: String,
    idle_ms: Option<u64>,
    opts: ClientOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: client --connect <tcp:host:port|unix:PATH> [--idle-ms N] [--train-delay-ms N] [--leave-after N] [--abort-after N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut connect = None;
    let mut idle_ms = None;
    let mut opts = ClientOptions::default();
    let mut args = std::env::args().skip(1);
    fn num<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => connect = Some(args.next().unwrap_or_else(|| usage())),
            "--idle-ms" => idle_ms = Some(num(&mut args)),
            "--train-delay-ms" => opts.train_delay_ms = num(&mut args),
            "--leave-after" => opts.leave_after_sessions = Some(num(&mut args)),
            "--abort-after" => opts.abort_after_round_starts = Some(num(&mut args)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    Args {
        connect: connect.unwrap_or_else(|| usage()),
        idle_ms,
        opts,
    }
}

fn main() {
    let args = parse_args();
    let telemetry = Telemetry::stderr();
    match client(&args.connect, &args.opts, args.idle_ms, &telemetry) {
        Ok((spec, report)) => {
            println!(
                "run:      {} on {} (seed {})",
                spec.method, spec.dataset, spec.seed
            );
            println!("peer:     {}", report.peer_id);
            println!("rounds:   {}", report.rounds);
            println!("sessions: {}", report.sessions);
            println!(
                "reason:   {}",
                match report.reason {
                    0 => "complete",
                    1 => "leave",
                    2 => "abort",
                    _ => "unknown",
                }
            );
        }
        Err(e) => {
            eprintln!("client: {e}");
            std::process::exit(1);
        }
    }
}
