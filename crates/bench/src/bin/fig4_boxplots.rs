//! Regenerates the paper's Figure 4: box-plot statistics of each domain's
//! accuracy distribution across task steps, per method, on Digits-Five.

use refil_bench::full_results;
use refil_bench::report::emit;
use refil_eval::{box_stats, pct, Table};

fn main() {
    let full = full_results(false);
    let (name, methods) = &full.datasets[0]; // Digits-Five
    let domains = &methods[0].result.domain_names;
    let mut table = Table::new(
        [
            "Method", "Domain", "Whisker-", "Q1", "Median", "Q3", "Whisker+", "Outliers",
        ]
        .map(String::from)
        .to_vec(),
    );
    for m in methods {
        for (d, dname) in domains.iter().enumerate() {
            // Accuracy on domain d at every step where it was evaluated.
            let samples: Vec<f32> = m
                .result
                .domain_acc
                .iter()
                .enumerate()
                .filter(|(t, _)| *t >= d)
                .map(|(_, row)| row[d])
                .collect();
            if samples.is_empty() {
                continue;
            }
            let s = box_stats(&samples);
            table.row(vec![
                m.name.clone(),
                dname.clone(),
                pct(s.whisker_lo),
                pct(s.q1),
                pct(s.median),
                pct(s.q3),
                pct(s.whisker_hi),
                s.outliers.len().to_string(),
            ]);
        }
    }
    emit(
        "fig4_boxplots",
        &format!("Figure 4 — Per-domain accuracy distribution across task steps ({name})"),
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
