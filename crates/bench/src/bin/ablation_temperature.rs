//! Design ablation beyond the paper: the DPCL temperature decay (Eq. 7)
//! versus a fixed temperature.

use refil_bench::methods::method_config;
use refil_bench::report::emit;
use refil_bench::{DatasetChoice, Scale};
use refil_core::{RefFiL, RefFiLConfig, TemperatureSchedule};
use refil_eval::{pct, scores, Table};
use refil_fed::FdilRunner;

fn main() {
    let ds_choice = DatasetChoice::OfficeCaltech10;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, 42, false);
    let run_cfg = ds_choice.run_config(&scale, 42);
    let base = method_config(ds_choice, dataset.num_domains(), 42 ^ 7);
    let prompt_cfg = refil_continual::MethodConfig {
        stable_after_first_task: true,
        ..base
    };

    let schedules = [
        (
            "decay (paper: τ=0.9, γ=0.1, β=0.05)",
            TemperatureSchedule::default(),
        ),
        (
            "fixed τ=0.9",
            TemperatureSchedule {
                tau: 0.9,
                tau_min: 0.3,
                gamma: 0.0,
                beta: 0.0,
            },
        ),
        (
            "fixed τ=0.3",
            TemperatureSchedule {
                tau: 0.3,
                tau_min: 0.3,
                gamma: 0.0,
                beta: 0.0,
            },
        ),
    ];
    let mut table = Table::new(
        ["Temperature", "Avg", "Last", "Forgetting"]
            .map(String::from)
            .to_vec(),
    );
    for (label, sched) in schedules {
        eprintln!("[ablation_temperature] {label} ...");
        let mut cfg = RefFiLConfig::new(prompt_cfg);
        cfg.temperature = sched;
        let mut strat = RefFiL::new(cfg);
        let res = FdilRunner::new(run_cfg).run(&dataset, &mut strat);
        let s = scores(&res.domain_acc);
        table.row(vec![
            label.into(),
            pct(s.avg),
            pct(s.last),
            pct(s.forgetting),
        ]);
    }
    emit(
        "ablation_temperature",
        "Ablation — DPCL temperature decay vs. fixed temperature (RefFiL on OfficeCaltech10)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
