//! Regenerates the paper's Table 2: the Table 1 summary under the shuffled
//! "new domain order" of Table 4.

use refil_bench::report::emit;
use refil_bench::{full_results, summary_table};

fn main() {
    let full = full_results(true);
    let table = summary_table(&full);
    emit(
        "table2",
        "Table 2 — Summarised results in the new domain order",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
