//! Design ablation beyond the paper: how the server condenses uploaded
//! prompts — FINCH (the paper's choice) vs. k-means vs. plain averaging
//! (the strawman §3 argues against).

use refil_bench::methods::method_config;
use refil_bench::report::emit;
use refil_bench::{DatasetChoice, Scale};
use refil_core::{ClusterMode, RefFiL, RefFiLConfig};
use refil_eval::{pct, scores, Table};
use refil_fed::FdilRunner;

fn main() {
    let ds_choice = DatasetChoice::OfficeCaltech10;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, 42, false);
    let run_cfg = ds_choice.run_config(&scale, 42);
    let base = method_config(ds_choice, dataset.num_domains(), 42 ^ 7);
    let prompt_cfg = refil_continual::MethodConfig {
        stable_after_first_task: true,
        ..base
    };

    let modes = [
        ("FINCH (paper)", ClusterMode::Finch),
        ("k-means (k=4)", ClusterMode::Kmeans(4)),
        ("plain average", ClusterMode::Average),
    ];
    let mut table = Table::new(
        [
            "Clustering",
            "Avg",
            "Last",
            "Forgetting",
            "Reps/class cap hit",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (label, mode) in modes {
        eprintln!("[ablation_clustering] {label} ...");
        let mut strat = RefFiL::new(RefFiLConfig::new(prompt_cfg).with_cluster_mode(mode));
        let res = FdilRunner::new(run_cfg).run(&dataset, &mut strat);
        let s = scores(&res.domain_acc);
        let reps = strat.prompt_store().total_reps();
        table.row(vec![
            label.into(),
            pct(s.avg),
            pct(s.last),
            pct(s.forgetting),
            reps.to_string(),
        ]);
    }
    emit(
        "ablation_clustering",
        "Ablation — global prompt clustering algorithm (RefFiL on OfficeCaltech10)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
