//! User-facing CLI: run one method on one dataset — in-process, as a
//! federation server, or as a joining client — and print/save the result.
//!
//! ```text
//! cargo run --release -p refil-bench --bin run -- \
//!     --dataset digits --method reffil --seed 42          # in-process
//! cargo run --release -p refil-bench --bin run -- \
//!     --dataset digits --method reffil --listen tcp:127.0.0.1:7700 \
//!     --min-peers 2                                       # server
//! cargo run --release -p refil-bench --bin run -- \
//!     --connect tcp:127.0.0.1:7700                        # client
//! ```
//!
//! One flag table covers all three modes:
//!
//! | flag | modes | meaning |
//! |------|-------|---------|
//! | `--dataset <name>`       | local, listen | `digits`, `office`, `pacs`, `domainnet` |
//! | `--method <name>`        | local, listen | `finetune`, `lwf`, `ewc`, `l2p`, `l2p+pool`, `dualprompt`, `dualprompt+pool`, `reffil`, `reffil+prompt` |
//! | `--seed N`               | local, listen | master seed (default 42) |
//! | `--new-order`            | local, listen | Table 4 shuffled domain order |
//! | `--listen <addr>`        | listen | serve rounds over `tcp:host:port`, `host:port`, or `unix:PATH` |
//! | `--connect <addr>`       | connect | join a server; dataset/method/seed come from its run-spec |
//! | `--min-peers N`          | listen | clients to wait for before round one (default 1) |
//! | `--round-deadline-ms N`  | listen | per-round straggler deadline (default 30000) |
//! | `--join-grace-ms N`      | listen | wait for re-joins when all peers leave (default 10000) |
//! | `--sample-fraction F`    | listen | per-round participation fraction in (0, 1]; 0 disables sampling (default 0) |
//! | `--min-sample N`         | listen | never sample below N sessions per round (default 0 = 1) |
//! | `--wire SPEC`            | local, listen | uplink compression spec, e.g. `delta+int8+topk0.5`, `f16`, `none` (default none) |
//! | `--threads N`            | all | worker pool size (0 = auto: all cores; N clamps to the core count; default from `REFIL_THREADS`) |
//! | `--json FILE`            | local, listen | write scores + accuracy matrix as JSON |
//! | `--trace FILE`           | all | stream telemetry events as JSONL |
//! | `--trace-chrome FILE`    | all | write a Chrome trace-event file (Perfetto) |
//! | `--metrics FILE`         | all | write a Prometheus text snapshot on exit |
//!
//! `REFIL_SCALE=smoke|bench|paper` controls the protocol scale (a server
//! stamps it into the spec it hands to clients); `REFIL_LOG` controls
//! stderr verbosity. Results are byte-identical across thread counts and
//! across the three modes: a `--listen` run with N clients reports the
//! same accuracies and per-kind wire bytes as the same-seed in-process
//! run. The dedicated `serve`/`client` binaries accept the same flags for
//! their respective modes.

use refil_bench::methods::method_by_name;
use refil_bench::netcli::{self, parse_wire_arg, scale_name_from_env, NetOverrides, NetSpec};
use refil_bench::{
    dataset_by_name, run_experiment_with_wire, DatasetChoice, ExperimentSpec, MethodChoice,
    MethodResult, Scale,
};
use refil_fed::ClientOptions;
use refil_telemetry::{ChromeTraceSink, JsonlSink, PrometheusSink, Sink, TeeSink, Telemetry};

struct Args {
    dataset: Option<DatasetChoice>,
    method: Option<MethodChoice>,
    seed: u64,
    new_order: bool,
    listen: Option<String>,
    connect: Option<String>,
    overrides: NetOverrides,
    threads: Option<usize>,
    json: Option<String>,
    trace: Option<String>,
    trace_chrome: Option<String>,
    metrics: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: run --dataset <digits|office|pacs|domainnet> --method <finetune|lwf|ewc|l2p|l2p+pool|dualprompt|dualprompt+pool|reffil|reffil+prompt> [--seed N] [--new-order] [--listen ADDR [--min-peers N] [--round-deadline-ms N] [--join-grace-ms N] [--sample-fraction F] [--min-sample N]] [--wire SPEC] [--threads N] [--json FILE] [--trace FILE] [--trace-chrome FILE] [--metrics FILE]\n       run --connect ADDR [--threads N] [--trace FILE] [--trace-chrome FILE] [--metrics FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        dataset: None,
        method: None,
        seed: 42,
        new_order: false,
        listen: None,
        connect: None,
        overrides: NetOverrides::default(),
        threads: None,
        json: None,
        trace: None,
        trace_chrome: None,
        metrics: None,
    };
    let mut args = std::env::args().skip(1);
    fn num<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dataset" => {
                let v = args.next().unwrap_or_else(|| usage());
                out.dataset = dataset_by_name(&v);
                if out.dataset.is_none() {
                    eprintln!("unknown dataset {v:?}");
                    usage();
                }
            }
            "--method" => {
                let v = args.next().unwrap_or_else(|| usage());
                out.method = method_by_name(&v);
                if out.method.is_none() {
                    eprintln!("unknown method {v:?}");
                    usage();
                }
            }
            "--seed" => out.seed = num(&mut args),
            "--new-order" => out.new_order = true,
            "--listen" => out.listen = Some(args.next().unwrap_or_else(|| usage())),
            "--connect" => out.connect = Some(args.next().unwrap_or_else(|| usage())),
            "--min-peers" => out.overrides.min_peers = Some(num(&mut args)),
            "--round-deadline-ms" => out.overrides.round_deadline_ms = Some(num(&mut args)),
            "--join-grace-ms" => out.overrides.join_grace_ms = Some(num(&mut args)),
            "--sample-fraction" => out.overrides.sample_fraction = Some(num(&mut args)),
            "--min-sample" => out.overrides.min_sample = Some(num(&mut args)),
            "--wire" => {
                let v = args.next().unwrap_or_else(|| usage());
                match parse_wire_arg(&v) {
                    Ok(w) => out.overrides.wire = Some(w),
                    Err(e) => {
                        eprintln!("{e}");
                        usage();
                    }
                }
            }
            "--threads" => out.threads = Some(num(&mut args)),
            "--json" => out.json = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => out.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-chrome" => out.trace_chrome = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics" => out.metrics = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    if out.listen.is_some() && out.connect.is_some() {
        eprintln!("--listen and --connect are mutually exclusive");
        usage();
    }
    if out.connect.is_none() && (out.dataset.is_none() || out.method.is_none()) {
        usage();
    }
    out
}

/// Builds the recording telemetry from the exporter flags: zero flags means
/// stderr logging only; one means that sink alone; several tee into all.
fn build_telemetry(args: &Args) -> Telemetry {
    fn open<S: Sink + 'static>(
        path: &str,
        create: impl FnOnce(&str) -> std::io::Result<S>,
    ) -> Box<dyn Sink> {
        match create(path) {
            Ok(sink) => Box::new(sink),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
    if let Some(path) = &args.trace {
        sinks.push(open(path, |p| JsonlSink::create(p)));
    }
    if let Some(path) = &args.trace_chrome {
        sinks.push(open(path, |p| ChromeTraceSink::create(p)));
    }
    if let Some(path) = &args.metrics {
        sinks.push(open(path, |p| PrometheusSink::create(p)));
    }
    match sinks.len() {
        0 => Telemetry::stderr(),
        1 => Telemetry::with_sink(sinks.pop().expect("one sink")),
        _ => Telemetry::with_sink(Box::new(TeeSink::new(sinks))),
    }
}

/// Joins a server as a training client; prints the replica's report.
fn run_connect(addr: &str, args: &Args) -> ! {
    let telemetry = build_telemetry(args);
    match netcli::client(addr, &ClientOptions::default(), None, &telemetry) {
        Ok((spec, report)) => {
            telemetry.flush();
            println!(
                "run:      {} on {} (seed {})",
                spec.method, spec.dataset, spec.seed
            );
            println!("peer:     {}", report.peer_id);
            println!("rounds:   {}", report.rounds);
            println!("sessions: {}", report.sessions);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("run --connect: {e}");
            std::process::exit(1);
        }
    }
}

fn print_result(args: &Args, r: &MethodResult, telemetry: &Telemetry, wall: std::time::Duration) {
    println!("method:      {}", r.name);
    println!("dataset:     {}", r.result.dataset);
    println!("Avg:         {:.2}%", r.scores.avg);
    println!("Last:        {:.2}%", r.scores.last);
    println!("forgetting:  {:.2}%", r.scores.forgetting);
    println!("steps:       {:?}", r.result.step_accuracies());
    println!(
        "traffic:     {:.1} MiB over {} rounds",
        r.result.traffic.total_bytes() as f64 / (1024.0 * 1024.0),
        r.result.traffic.rounds
    );
    println!("wall time:   {wall:.1?}");
    if args.listen.is_some() {
        let late: u64 = r.result.rounds.iter().map(|rr| rr.clients_late).sum();
        println!("late:        {late} session(s) missed their round deadline");
    }
    if let Some(path) = &args.trace {
        let summary = &r.result.telemetry;
        println!(
            "trace:       {path} ({} client sessions, {} bytes up / {} bytes down)",
            summary.counter("clients.trained"),
            summary.counter("traffic.up_bytes"),
            summary.counter("traffic.down_bytes"),
        );
        // Per-message-kind breakdown of the encoded-frame traffic.
        for (name, bytes) in summary.counters_with_prefix("wire.") {
            let kind = name
                .strip_prefix("wire.")
                .and_then(|n| n.strip_suffix("_bytes"))
                .unwrap_or(name);
            println!("  {kind:<24} {bytes} bytes");
        }
    }
    if let Some(path) = &args.trace_chrome {
        println!("chrome trace: {path} (open in Perfetto or chrome://tracing)");
    }
    if let Some(path) = &args.metrics {
        println!("metrics:     {path}");
    }
    if let Some(path) = &args.json {
        #[derive(serde::Serialize)]
        struct Out<'a> {
            name: &'a str,
            scores: refil_eval::Scores,
            domain_names: &'a [String],
            domain_acc: &'a [Vec<f32>],
        }
        let out = Out {
            name: &r.name,
            scores: r.scores,
            domain_names: &r.result.domain_names,
            domain_acc: &r.result.domain_acc,
        };
        match serde_json::to_string_pretty(&out) {
            Ok(s) => {
                if let Err(e) = std::fs::write(path, s) {
                    telemetry.warn(format!("could not write {path}: {e}"));
                } else {
                    telemetry.info(format!("wrote {path}"));
                }
            }
            Err(e) => telemetry.warn(format!("serialization failed: {e}")),
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(addr) = args.connect.clone() {
        run_connect(&addr, &args);
    }
    let (dataset, method) = (
        args.dataset.expect("checked in parse_args"),
        args.method.expect("checked in parse_args"),
    );
    // Status reporting goes through the level-filtered stderr sink; the run
    // itself records into a JSONL trace when --trace is given.
    let status = Telemetry::stderr();
    status.info(format!(
        "running {} on {}{} (seed {})",
        method.paper_name(),
        dataset.name(),
        if args.new_order { ", new order" } else { "" },
        args.seed
    ));
    let telemetry = build_telemetry(&args);
    let start = std::time::Instant::now();
    let r = if let Some(addr) = &args.listen {
        let spec = NetSpec::new(
            dataset,
            method,
            scale_name_from_env(),
            args.seed,
            args.new_order,
        );
        match netcli::serve(addr, &spec, &args.overrides, args.threads, &telemetry) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("run --listen: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let spec = ExperimentSpec {
            dataset,
            scale: Scale::from_env(),
            new_order: args.new_order,
            seed: args.seed,
        };
        run_experiment_with_wire(&spec, method, &telemetry, args.threads, args.overrides.wire)
    };
    telemetry.flush();
    print_result(&args, &r, &status, start.elapsed());
}
