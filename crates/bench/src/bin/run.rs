//! User-facing CLI: run one method on one dataset and print/save the result.
//!
//! ```text
//! cargo run --release -p refil-bench --bin run -- \
//!     --dataset digits --method reffil --seed 42 [--new-order] [--json out.json]
//! ```
//!
//! `REFIL_SCALE=smoke|bench|paper` controls the protocol scale.

use refil_bench::methods::method_by_name;
use refil_bench::{dataset_by_name, run_experiment, DatasetChoice, ExperimentSpec, MethodChoice, Scale};

struct Args {
    dataset: DatasetChoice,
    method: MethodChoice,
    seed: u64,
    new_order: bool,
    json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: run --dataset <digits|office|pacs|domainnet> --method <finetune|lwf|ewc|l2p|l2p+pool|dualprompt|dualprompt+pool|reffil> [--seed N] [--new-order] [--json FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut dataset = None;
    let mut method = None;
    let mut seed = 42u64;
    let mut new_order = false;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dataset" => {
                let v = args.next().unwrap_or_else(|| usage());
                dataset = dataset_by_name(&v);
                if dataset.is_none() {
                    eprintln!("unknown dataset {v:?}");
                    usage();
                }
            }
            "--method" => {
                let v = args.next().unwrap_or_else(|| usage());
                method = method_by_name(&v);
                if method.is_none() {
                    eprintln!("unknown method {v:?}");
                    usage();
                }
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--new-order" => new_order = true,
            "--json" => json = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    Args {
        dataset: dataset.unwrap_or_else(|| usage()),
        method: method.unwrap_or_else(|| usage()),
        seed,
        new_order,
        json,
    }
}

fn main() {
    let args = parse_args();
    let spec = ExperimentSpec {
        dataset: args.dataset,
        scale: Scale::from_env(),
        new_order: args.new_order,
        seed: args.seed,
    };
    eprintln!(
        "running {} on {}{} (seed {}) ...",
        args.method.paper_name(),
        args.dataset.name(),
        if args.new_order { ", new order" } else { "" },
        args.seed
    );
    let start = std::time::Instant::now();
    let r = run_experiment(&spec, args.method);
    println!("method:      {}", r.name);
    println!("dataset:     {}", r.result.dataset);
    println!("Avg:         {:.2}%", r.scores.avg);
    println!("Last:        {:.2}%", r.scores.last);
    println!("forgetting:  {:.2}%", r.scores.forgetting);
    println!("steps:       {:?}", r.result.step_accuracies());
    println!(
        "traffic:     {:.1} MiB over {} rounds",
        r.result.traffic.total_bytes() as f64 / (1024.0 * 1024.0),
        r.result.traffic.rounds
    );
    println!("wall time:   {:.1?}", start.elapsed());
    if let Some(path) = args.json {
        #[derive(serde::Serialize)]
        struct Out<'a> {
            name: &'a str,
            scores: refil_eval::Scores,
            domain_names: &'a [String],
            domain_acc: &'a [Vec<f32>],
        }
        let out = Out {
            name: &r.name,
            scores: r.scores,
            domain_names: &r.result.domain_names,
            domain_acc: &r.result.domain_acc,
        };
        match serde_json::to_string_pretty(&out) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&path, s) {
                    eprintln!("could not write {path}: {e}");
                } else {
                    eprintln!("wrote {path}");
                }
            }
            Err(e) => eprintln!("serialization failed: {e}"),
        }
    }
}
