//! User-facing CLI: run one method on one dataset and print/save the result.
//!
//! ```text
//! cargo run --release -p refil-bench --bin run -- \
//!     --dataset digits --method reffil --seed 42 \
//!     [--new-order] [--threads N] [--json out.json] [--trace trace.jsonl] \
//!     [--trace-chrome trace.json] [--metrics metrics.prom]
//! ```
//!
//! `REFIL_SCALE=smoke|bench|paper` controls the protocol scale;
//! `REFIL_LOG=error|warn|info|debug|off` controls stderr verbosity.
//! `--threads N` runs client sessions on N worker threads (0 = all cores;
//! default from `REFIL_THREADS`, else sequential) — results are
//! byte-identical at any thread count. `--trace FILE` streams every
//! telemetry event (spans, counters, histograms) as one JSON object per
//! line to `FILE`. `--trace-chrome FILE` writes a Chrome trace-event JSON
//! (open in Perfetto / `chrome://tracing`; one track per worker slot).
//! `--metrics FILE` writes a Prometheus-style text exposition snapshot on
//! exit. The three exporters compose — each flag adds a sink.

use refil_bench::methods::method_by_name;
use refil_bench::{
    dataset_by_name, run_experiment_with_threads, DatasetChoice, ExperimentSpec, MethodChoice,
    Scale,
};
use refil_telemetry::{ChromeTraceSink, JsonlSink, PrometheusSink, Sink, TeeSink, Telemetry};

struct Args {
    dataset: DatasetChoice,
    method: MethodChoice,
    seed: u64,
    new_order: bool,
    threads: Option<usize>,
    json: Option<String>,
    trace: Option<String>,
    trace_chrome: Option<String>,
    metrics: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: run --dataset <digits|office|pacs|domainnet> --method <finetune|lwf|ewc|l2p|l2p+pool|dualprompt|dualprompt+pool|reffil> [--seed N] [--new-order] [--threads N] [--json FILE] [--trace FILE] [--trace-chrome FILE] [--metrics FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut dataset = None;
    let mut method = None;
    let mut seed = 42u64;
    let mut new_order = false;
    let mut threads = None;
    let mut json = None;
    let mut trace = None;
    let mut trace_chrome = None;
    let mut metrics = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dataset" => {
                let v = args.next().unwrap_or_else(|| usage());
                dataset = dataset_by_name(&v);
                if dataset.is_none() {
                    eprintln!("unknown dataset {v:?}");
                    usage();
                }
            }
            "--method" => {
                let v = args.next().unwrap_or_else(|| usage());
                method = method_by_name(&v);
                if method.is_none() {
                    eprintln!("unknown method {v:?}");
                    usage();
                }
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--new-order" => new_order = true,
            "--threads" => {
                threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--json" => json = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-chrome" => trace_chrome = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics" => metrics = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    Args {
        dataset: dataset.unwrap_or_else(|| usage()),
        method: method.unwrap_or_else(|| usage()),
        seed,
        new_order,
        threads,
        json,
        trace,
        trace_chrome,
        metrics,
    }
}

/// Builds the recording telemetry from the exporter flags: zero flags means
/// stderr logging only; one means that sink alone; several tee into all.
fn build_telemetry(args: &Args) -> Telemetry {
    fn open<S: Sink + 'static>(
        path: &str,
        create: impl FnOnce(&str) -> std::io::Result<S>,
    ) -> Box<dyn Sink> {
        match create(path) {
            Ok(sink) => Box::new(sink),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
    if let Some(path) = &args.trace {
        sinks.push(open(path, |p| JsonlSink::create(p)));
    }
    if let Some(path) = &args.trace_chrome {
        sinks.push(open(path, |p| ChromeTraceSink::create(p)));
    }
    if let Some(path) = &args.metrics {
        sinks.push(open(path, |p| PrometheusSink::create(p)));
    }
    match sinks.len() {
        0 => Telemetry::stderr(),
        1 => Telemetry::with_sink(sinks.pop().expect("one sink")),
        _ => Telemetry::with_sink(Box::new(TeeSink::new(sinks))),
    }
}

fn main() {
    let args = parse_args();
    let spec = ExperimentSpec {
        dataset: args.dataset,
        scale: Scale::from_env(),
        new_order: args.new_order,
        seed: args.seed,
    };
    // Status reporting goes through the level-filtered stderr sink; the run
    // itself records into a JSONL trace when --trace is given.
    let status = Telemetry::stderr();
    status.info(format!(
        "running {} on {}{} (seed {})",
        args.method.paper_name(),
        args.dataset.name(),
        if args.new_order { ", new order" } else { "" },
        args.seed
    ));
    let telemetry = build_telemetry(&args);
    let start = std::time::Instant::now();
    let r = run_experiment_with_threads(&spec, args.method, &telemetry, args.threads);
    telemetry.flush();
    println!("method:      {}", r.name);
    println!("dataset:     {}", r.result.dataset);
    println!("Avg:         {:.2}%", r.scores.avg);
    println!("Last:        {:.2}%", r.scores.last);
    println!("forgetting:  {:.2}%", r.scores.forgetting);
    println!("steps:       {:?}", r.result.step_accuracies());
    println!(
        "traffic:     {:.1} MiB over {} rounds",
        r.result.traffic.total_bytes() as f64 / (1024.0 * 1024.0),
        r.result.traffic.rounds
    );
    println!("wall time:   {:.1?}", start.elapsed());
    if let Some(path) = &args.trace {
        let summary = &r.result.telemetry;
        println!(
            "trace:       {path} ({} client sessions, {} bytes up / {} bytes down)",
            summary.counter("clients.trained"),
            summary.counter("traffic.up_bytes"),
            summary.counter("traffic.down_bytes"),
        );
        // Per-message-kind breakdown of the encoded-frame traffic.
        for (name, bytes) in summary.counters_with_prefix("wire.") {
            let kind = name
                .strip_prefix("wire.")
                .and_then(|n| n.strip_suffix("_bytes"))
                .unwrap_or(name);
            println!("  {kind:<24} {bytes} bytes");
        }
    }
    if let Some(path) = &args.trace_chrome {
        println!("chrome trace: {path} (open in Perfetto or chrome://tracing)");
    }
    if let Some(path) = &args.metrics {
        println!("metrics:     {path}");
    }
    if let Some(path) = args.json {
        #[derive(serde::Serialize)]
        struct Out<'a> {
            name: &'a str,
            scores: refil_eval::Scores,
            domain_names: &'a [String],
            domain_acc: &'a [Vec<f32>],
        }
        let out = Out {
            name: &r.name,
            scores: r.scores,
            domain_names: &r.result.domain_names,
            domain_acc: &r.result.domain_acc,
        };
        match serde_json::to_string_pretty(&out) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&path, s) {
                    status.warn(format!("could not write {path}: {e}"));
                } else {
                    status.info(format!("wrote {path}"));
                }
            }
            Err(e) => status.warn(format!("serialization failed: {e}")),
        }
    }
}
