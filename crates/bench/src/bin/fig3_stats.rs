//! Regenerates the paper's Table 6 / Figure 3: FedDomainNet per-class,
//! per-domain sample statistics, verified against the generated dataset.

use refil_bench::report::emit;
use refil_data::{
    fed_domain_net, PresetConfig, FED_DOMAIN_NET_CLASSES, FED_DOMAIN_NET_COUNTS,
    FED_DOMAIN_NET_DOMAINS,
};
use refil_eval::Table;

fn main() {
    // Table 6: the paper's counts as embedded constants.
    let mut header = vec!["Class".to_string()];
    header.extend(FED_DOMAIN_NET_DOMAINS.iter().map(|d| d.to_string()));
    header.push("Total".into());
    let mut t6 = Table::new(header);
    for (class, row) in FED_DOMAIN_NET_CLASSES
        .iter()
        .zip(FED_DOMAIN_NET_COUNTS.iter())
    {
        let mut cells = vec![class.to_string()];
        cells.extend(row.iter().map(usize::to_string));
        cells.push(row.iter().sum::<usize>().to_string());
        t6.row(cells);
    }
    let mut totals = vec!["Total".to_string()];
    let mut grand = 0usize;
    for di in 0..6 {
        let col: usize = FED_DOMAIN_NET_COUNTS.iter().map(|r| r[di]).sum();
        totals.push(col.to_string());
        grand += col;
    }
    totals.push(grand.to_string());
    t6.row(totals);
    emit(
        "table6",
        "Table 6 — FedDomainNet per-class statistics",
        &t6.to_markdown(),
        Some(&t6.to_csv()),
    );

    // Figure 3: distribution summary of the *generated* dataset, checking it
    // reproduces the intended skew.
    let ds = fed_domain_net(PresetConfig {
        scale: 0.15,
        feature_dim: 48,
    })
    .generate(42);
    let mut fig3 = Table::new(
        ["Domain", "Samples", "Min class", "Max class", "Mean/class"]
            .map(String::from)
            .to_vec(),
    );
    for dom in &ds.domains {
        let mut per_class = vec![0usize; ds.classes];
        for s in dom.train.iter().chain(&dom.test) {
            per_class[s.label] += 1;
        }
        let min = per_class.iter().min().copied().unwrap_or(0);
        let max = per_class.iter().max().copied().unwrap_or(0);
        fig3.row(vec![
            dom.name.clone(),
            dom.len().to_string(),
            min.to_string(),
            max.to_string(),
            format!("{:.1}", dom.len() as f32 / ds.classes as f32),
        ]);
    }
    emit(
        "fig3_stats",
        "Figure 3 — Generated FedDomainNet distribution statistics (scale 0.15)",
        &fig3.to_markdown(),
        Some(&fig3.to_csv()),
    );
}
