//! Extension experiment: seed variance of the headline comparison.
//!
//! Runs Finetune, FedDualPrompt† and RefFiL on Digits-Five under several
//! seeds (data generation + protocol + init all reseeded) and reports
//! mean ± std of Avg/Last. Seeds run in parallel with crossbeam scoped
//! threads, bounded by the available cores.

use crossbeam::thread;

use refil_bench::methods::{build_method, method_config, MethodChoice};
use refil_bench::report::emit;
use refil_bench::{DatasetChoice, Scale};
use refil_eval::{scores, Scores, Table};
use refil_fed::FdilRunner;

const SEEDS: [u64; 3] = [42, 1337, 2024];

fn run_one(method: MethodChoice, seed: u64) -> Scores {
    let ds_choice = DatasetChoice::DigitsFive;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, seed, false);
    let cfg = method_config(ds_choice, dataset.num_domains(), seed ^ 7);
    let mut strategy = build_method(method, cfg);
    let run_cfg = ds_choice.run_config(&scale, seed);
    let res = FdilRunner::new(run_cfg).run(&dataset, strategy.as_mut());
    scores(&res.domain_acc)
}

fn mean_std(xs: &[f32]) -> (f32, f32) {
    let n = xs.len() as f32;
    let mean = xs.iter().sum::<f32>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    (mean, var.sqrt())
}

fn main() {
    let methods = [
        MethodChoice::Finetune,
        MethodChoice::FedDualPromptPool,
        MethodChoice::RefFiL,
    ];
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "[variance] {} seeds x {} methods on {} worker thread(s)",
        SEEDS.len(),
        methods.len(),
        workers
    );

    let jobs: Vec<(MethodChoice, u64)> = methods
        .iter()
        .flat_map(|&m| SEEDS.iter().map(move |&s| (m, s)))
        .collect();

    // Parallel map over (method, seed) pairs with a bounded worker pool.
    let results: Vec<(MethodChoice, u64, Scores)> = thread::scope(|scope| {
        let chunks: Vec<_> = jobs.chunks(jobs.len().div_ceil(workers)).collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move |_| {
                    chunk
                        .iter()
                        .map(|&(m, s)| {
                            eprintln!("[variance] {} seed {s} ...", m.paper_name());
                            (m, s, run_one(m, s))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope");

    let mut table = Table::new(
        [
            "Method",
            "Avg mean±std",
            "Last mean±std",
            "Forgetting mean±std",
        ]
        .map(String::from)
        .to_vec(),
    );
    for m in methods {
        let avg: Vec<f32> = results
            .iter()
            .filter(|(mm, _, _)| *mm == m)
            .map(|(_, _, s)| s.avg)
            .collect();
        let last: Vec<f32> = results
            .iter()
            .filter(|(mm, _, _)| *mm == m)
            .map(|(_, _, s)| s.last)
            .collect();
        let fgt: Vec<f32> = results
            .iter()
            .filter(|(mm, _, _)| *mm == m)
            .map(|(_, _, s)| s.forgetting)
            .collect();
        let (am, asd) = mean_std(&avg);
        let (lm, lsd) = mean_std(&last);
        let (fm, fsd) = mean_std(&fgt);
        table.row(vec![
            m.paper_name().into(),
            format!("{am:.2} ± {asd:.2}"),
            format!("{lm:.2} ± {lsd:.2}"),
            format!("{fm:.2} ± {fsd:.2}"),
        ]);
    }
    emit(
        "variance",
        "Extension — seed variance of the headline comparison (Digits-Five, 3 seeds)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
