//! Extension experiment: RefFiL's task-ID dependence (the paper's stated
//! limitation). Compares oracle task IDs at evaluation (the paper's setting)
//! against confidence-based task-free inference and a naive
//! always-use-latest-task policy, on Digits-Five.

use refil_bench::methods::method_config;
use refil_bench::report::emit;
use refil_bench::{DatasetChoice, Scale};
use refil_core::{RefFiL, RefFiLConfig};
use refil_eval::{pct, scores, Table};
use refil_fed::{evaluate_domain, FdilRunner, FdilStrategy};

fn main() {
    let ds_choice = DatasetChoice::DigitsFive;
    let scale = Scale::from_env();
    let dataset = ds_choice.generate(&scale, 42, false);
    let run_cfg = ds_choice.run_config(&scale, 42);
    let base = method_config(ds_choice, dataset.num_domains(), 42 ^ 7);
    let prompt_cfg = refil_continual::MethodConfig {
        stable_after_first_task: true,
        ..base
    };

    // Train once with the standard setting; evaluation policies differ only
    // at inference, so the same final model serves all three rows.
    eprintln!("[ablation_taskid] training RefFiL ...");
    let mut oracle = RefFiL::new(RefFiLConfig::new(prompt_cfg));
    let res = FdilRunner::new(run_cfg).run(&dataset, &mut oracle);
    let oracle_scores = scores(&res.domain_acc);

    let eval_all = |strat: &mut RefFiL, global: &[f32]| -> Vec<f32> {
        (0..dataset.num_domains())
            .map(|d| evaluate_domain(strat, global, &dataset, d, 256))
            .collect()
    };

    // Task-free: same weights, confidence-inferred task key.
    let mut free = RefFiL::new(RefFiLConfig::new(prompt_cfg).with_task_free_inference(true));
    let _ = FdilStrategy::init_global(&mut free);
    FdilStrategy::on_task_start(&mut free, dataset.num_domains() - 1, &res.final_global);
    let free_acc = eval_all(&mut free, &res.final_global);

    // Naive: always condition on the latest task key.
    let mut naive = RefFiL::new(RefFiLConfig::new(prompt_cfg));
    let _ = FdilStrategy::init_global(&mut naive);
    FdilStrategy::on_task_start(&mut naive, dataset.num_domains() - 1, &res.final_global);
    let last_task = dataset.num_domains() - 1;
    let naive_acc: Vec<f32> = (0..dataset.num_domains())
        .map(|_d| {
            // predict_domain with the latest key for every domain.
            let mut total = 0usize;
            let mut correct = 0usize;
            for chunk in dataset.domains[_d].test.chunks(256) {
                let dim = chunk[0].features.len();
                let mut data = Vec::with_capacity(chunk.len() * dim);
                for s in chunk {
                    data.extend_from_slice(&s.features);
                }
                let x = refil_nn::Tensor::from_vec(data, &[chunk.len(), dim]);
                let preds =
                    FdilStrategy::predict_domain(&mut naive, &res.final_global, &x, last_task);
                correct += preds
                    .iter()
                    .zip(chunk)
                    .filter(|(p, s)| **p == s.label)
                    .count();
                total += chunk.len();
            }
            100.0 * correct as f32 / total as f32
        })
        .collect();

    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    let mut table = Table::new(
        ["Evaluation policy", "Final mean acc", "Notes"]
            .map(String::from)
            .to_vec(),
    );
    table.row(vec![
        "oracle task ID (paper)".into(),
        pct(mean(res.final_domain_accuracies())),
        format!(
            "Avg {} / Last {}",
            pct(oracle_scores.avg),
            pct(oracle_scores.last)
        ),
    ]);
    table.row(vec![
        "confidence-inferred task (extension)".into(),
        pct(mean(&free_acc)),
        "no task ID needed at inference".into(),
    ]);
    table.row(vec![
        "always latest task (naive)".into(),
        pct(mean(&naive_acc)),
        "what a task-ID-less deployment degrades to without inference".into(),
    ]);
    emit(
        "ablation_taskid",
        "Extension — removing RefFiL's task-ID dependence at inference (Digits-Five, final model)",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}
