//! Accuracy-vs-bytes recorder for the wire compression layer: runs the same
//! pinned-seed RefFiL experiment under a matrix of [`WireConfig`]s (plus the
//! prompt-only exchange mode) and writes `BENCH_wire.json` to the repo root
//! with, per row, the uplink bytes as encoded on the wire, the dense-frame
//! bytes the same updates would have cost uncompressed, the resulting
//! reduction ratio, and the Avg/Last/forgetting scores — so the
//! bytes-for-accuracy trade recorded in the paper's communication analysis
//! is regenerated in-tree and gated by `bench_gate --check`.
//!
//! Run with `cargo run --release -p refil-bench --bin bench_wire`.
//! `REFIL_SCALE=smoke` shrinks the protocol for CI smoke runs.
//!
//! The bin asserts the acceptance floor itself: the aggressive lossy spec
//! (`delta+int8+topk0.5`) and the prompt-only mode must both cut encoded
//! uplink bytes at least 5× while landing final accuracy within one point
//! of the uncompressed run, and every row's per-kind `wire_bytes` columns
//! must sum exactly to the run's total traffic.

use std::time::Instant;

use refil_bench::datasets::DatasetChoice;
use refil_bench::methods::{build_method, method_config, MethodChoice};
use refil_bench::runner::ExperimentSpec;
use refil_bench::BenchMeta;
use refil_eval::scores;
use refil_fed::{FdilRunner, Telemetry, WireConfig, WireQuant};

/// One compression row: a method plus the wire spec it runs under.
struct Row {
    name: &'static str,
    method: MethodChoice,
    wire: WireConfig,
}

fn rows() -> Vec<Row> {
    let base = WireConfig::default();
    vec![
        Row {
            name: "none",
            method: MethodChoice::RefFiL,
            wire: base,
        },
        Row {
            name: "delta",
            method: MethodChoice::RefFiL,
            wire: WireConfig {
                delta: true,
                ..base
            },
        },
        Row {
            name: "delta+f16",
            method: MethodChoice::RefFiL,
            wire: WireConfig {
                delta: true,
                quant: WireQuant::F16,
                ..base
            },
        },
        Row {
            name: "delta+int8+topk0.25",
            method: MethodChoice::RefFiL,
            wire: WireConfig {
                delta: true,
                quant: WireQuant::Int8,
                topk_fraction: 0.25,
            },
        },
        Row {
            name: "delta+int8+topk0.5",
            method: MethodChoice::RefFiL,
            wire: WireConfig {
                delta: true,
                quant: WireQuant::Int8,
                topk_fraction: 0.5,
            },
        },
        Row {
            name: "prompt-only",
            method: MethodChoice::RefFiLPromptOnly,
            wire: base,
        },
        Row {
            name: "prompt-only+delta+int8",
            method: MethodChoice::RefFiLPromptOnly,
            wire: WireConfig {
                delta: true,
                quant: WireQuant::Int8,
                ..base
            },
        },
    ]
}

#[derive(serde::Serialize)]
struct WireRecord {
    name: String,
    /// Wall time of the full federated run under this spec.
    run_ns: u64,
    /// Encoded uplink bytes summed over every round.
    uplink_encoded_bytes: u64,
    /// Dense-frame bytes the same updates would have cost.
    uplink_raw_bytes: u64,
    /// `raw / encoded` — the gated compression figure (higher is better).
    uplink_reduction_ratio: f64,
    /// Average incremental accuracy (%).
    acc_avg: f32,
    /// Final-step accuracy (%).
    acc_last: f32,
    /// Forgetting measure (%).
    forgetting: f32,
}

#[derive(serde::Serialize)]
struct Report {
    generated_by: String,
    meta: BenchMeta,
    dataset: String,
    seed: u64,
    records: Vec<WireRecord>,
}

/// Runs one row on the pinned experiment and folds its accounting.
fn run_row(spec: &ExperimentSpec, row: &Row) -> WireRecord {
    let dataset = spec
        .dataset
        .generate(&spec.scale, spec.seed, spec.new_order);
    let cfg = method_config(spec.dataset, dataset.num_domains(), spec.seed ^ 7);
    let mut strategy = build_method(row.method, cfg);
    let mut run_cfg = spec.dataset.run_config(&spec.scale, spec.seed);
    run_cfg.wire = row.wire;
    let t = Instant::now();
    let result = FdilRunner::new(run_cfg)
        .telemetry(&Telemetry::disabled())
        .threads(1)
        .run(&dataset, strategy.as_mut());
    let run_ns = t.elapsed().as_nanos() as u64;

    // The per-kind wire ledger must partition the traffic totals exactly,
    // compression or not: every encoded frame lands in exactly one kind.
    let per_kind: u64 = result.rounds.iter().map(|r| r.total_wire_bytes()).sum();
    let traffic_total = result.traffic.up_bytes + result.traffic.down_bytes;
    assert_eq!(
        per_kind, traffic_total,
        "{}: per-kind wire bytes ({per_kind}) != traffic total ({traffic_total})",
        row.name
    );

    // Note `encoded` can exceed `raw` slightly (a few tens of bytes per
    // update) for specs that keep dense f32 values: the compressed frame
    // carries the delta base tag and index header that a plain
    // `ClientModelUpdate` does not.
    let encoded: u64 = result.rounds.iter().map(|r| r.uplink_encoded_bytes).sum();
    let raw: u64 = result.rounds.iter().map(|r| r.uplink_raw_bytes).sum();
    let s = scores(&result.domain_acc);
    WireRecord {
        name: format!("fed/wire/{}", row.name),
        run_ns,
        uplink_encoded_bytes: encoded,
        uplink_raw_bytes: raw,
        uplink_reduction_ratio: raw as f64 / encoded as f64,
        acc_avg: s.avg,
        acc_last: s.last,
        forgetting: s.forgetting,
    }
}

fn out_path_from_args() -> String {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json").to_string();
    let mut out = default;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("bench_wire: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("bench_wire: unknown argument {other}\nusage: bench_wire [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let out_path = out_path_from_args();
    let spec = ExperimentSpec::new(DatasetChoice::OfficeCaltech10);

    let mut records = Vec::new();
    for row in rows() {
        let rec = run_row(&spec, &row);
        println!(
            "{:<32} {:>12} B encoded  {:>12} B raw  {:>7.2}x  Avg {:>6.2}%  Last {:>6.2}%",
            rec.name,
            rec.uplink_encoded_bytes,
            rec.uplink_raw_bytes,
            rec.uplink_reduction_ratio,
            rec.acc_avg,
            rec.acc_last,
        );
        records.push(rec);
    }

    // Acceptance floor: each aggressive spec must buy >= 5x uplink with
    // final accuracy within one point of the uncompressed run of the same
    // method — the codec must not change what the model learns. (The
    // prompt-only *mode* itself trades accuracy for bytes at bench scale,
    // where the from-scratch backbone still benefits from aggregation; that
    // trade is the curve's point and is recorded, not gated.)
    let row = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("row {name} present"))
    };
    for (aggressive, uncompressed) in [
        ("fed/wire/delta+int8+topk0.5", "fed/wire/none"),
        ("fed/wire/prompt-only+delta+int8", "fed/wire/prompt-only"),
    ] {
        let rec = row(aggressive);
        assert!(
            rec.uplink_reduction_ratio >= 5.0,
            "{aggressive}: reduction {:.2}x below the 5x floor",
            rec.uplink_reduction_ratio
        );
        let baseline_last = row(uncompressed).acc_last;
        assert!(
            (rec.acc_last - baseline_last).abs() <= 1.0,
            "{aggressive}: final accuracy {:.2}% strays more than 1 point from \
             the uncompressed {:.2}%",
            rec.acc_last,
            baseline_last
        );
    }

    let report = Report {
        generated_by: "cargo run --release -p refil-bench --bin bench_wire".into(),
        meta: BenchMeta::capture(),
        dataset: spec.dataset.name().to_string(),
        seed: spec.seed,
        records,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write wire report");
    println!("wrote {out_path}");
}
