//! The eight methods of the paper's comparison, built behind one interface.

use refil_continual::{FedDualPrompt, FedEwc, FedL2p, FedLwf, Finetune, MethodConfig};
use refil_core::{RefFiL, RefFiLConfig, RefFiLFlags};
use refil_fed::FdilStrategy;
use refil_nn::models::{BackboneConfig, ExtractorKind};

use crate::datasets::DatasetChoice;

/// Every method row in the paper's Tables 1–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodChoice {
    /// Plain federated finetuning.
    Finetune,
    /// Learning without Forgetting.
    FedLwf,
    /// Elastic Weight Consolidation.
    FedEwc,
    /// Learning-to-Prompt (pool deactivated).
    FedL2p,
    /// Learning-to-Prompt with pool (the † row).
    FedL2pPool,
    /// DualPrompt (pool deactivated).
    FedDualPrompt,
    /// DualPrompt with per-task experts (the † row).
    FedDualPromptPool,
    /// The paper's contribution.
    RefFiL,
    /// RefFiL with prompt-only parameter exchange: the shared backbone
    /// stays at the server's broadcast values and only the prompt
    /// machinery travels uplink (the communication-light deployment; not a
    /// paper table row, so excluded from [`MethodChoice::all`]).
    RefFiLPromptOnly,
}

impl MethodChoice {
    /// All eight methods in the paper's row order.
    pub fn all() -> [MethodChoice; 8] {
        [
            Self::Finetune,
            Self::FedLwf,
            Self::FedEwc,
            Self::FedL2p,
            Self::FedL2pPool,
            Self::FedDualPrompt,
            Self::FedDualPromptPool,
            Self::RefFiL,
        ]
    }

    /// The canonical CLI spelling, accepted by [`method_by_name`]. Used in
    /// network run-specs, where the label must survive a round-trip.
    pub fn cli_name(self) -> &'static str {
        match self {
            Self::Finetune => "finetune",
            Self::FedLwf => "lwf",
            Self::FedEwc => "ewc",
            Self::FedL2p => "l2p",
            Self::FedL2pPool => "l2p+pool",
            Self::FedDualPrompt => "dualprompt",
            Self::FedDualPromptPool => "dualprompt+pool",
            Self::RefFiL => "reffil",
            Self::RefFiLPromptOnly => "reffil+prompt",
        }
    }

    /// The row label used in the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            Self::Finetune => "Finetune",
            Self::FedLwf => "FedLwF",
            Self::FedEwc => "FedEWC",
            Self::FedL2p => "FedL2P",
            Self::FedL2pPool => "FedL2P\u{2020}",
            Self::FedDualPrompt => "FedDualPrompt",
            Self::FedDualPromptPool => "FedDualPrompt\u{2020}",
            Self::RefFiL => "RefFiL",
            Self::RefFiLPromptOnly => "RefFiL (prompt-only)",
        }
    }
}

/// The shared method configuration for a dataset: identical backbone for all
/// methods, the paper's per-dataset learning rate, and a task-table bound.
pub fn method_config(dataset: DatasetChoice, num_tasks: usize, seed: u64) -> MethodConfig {
    let spec_classes = match dataset {
        DatasetChoice::Pacs => 7,
        DatasetChoice::FedDomainNet => 48,
        _ => 10,
    };
    let in_dim = if dataset == DatasetChoice::FedDomainNet {
        48
    } else {
        32
    };
    MethodConfig {
        backbone: BackboneConfig {
            in_dim,
            extractor_width: 64,
            extractor_depth: 2,
            n_patches: 4,
            token_dim: 32,
            heads: 4,
            blocks: 1,
            classes: spec_classes,
            extractor: ExtractorKind::ResidualMlp,
        },
        lr: dataset.lr(),
        momentum: 0.9,
        clip: 5.0,
        extractor_lr_scale: 0.15,
        stable_after_first_task: false,
        stable_backbone_scale: 0.2,
        prompt_len: 4,
        pool_size: 8,
        top_n: 2,
        ewc_lambda: 300.0,
        kd_temperature: 2.0,
        kd_weight: 1.0,
        max_tasks: num_tasks.max(1),
        init_seed: seed,
    }
}

/// Builds a strategy instance for `choice`.
///
/// Prompt-based methods get the stable-backbone regime (the analogue of
/// L2P/DualPrompt's frozen pretrained backbone): shared weights slow down
/// after the first task, adaptation flows through prompts.
pub fn build_method(choice: MethodChoice, cfg: MethodConfig) -> Box<dyn FdilStrategy> {
    let prompt_cfg = MethodConfig {
        stable_after_first_task: true,
        ..cfg
    };
    match choice {
        MethodChoice::Finetune => Box::new(Finetune::new(cfg)),
        MethodChoice::FedLwf => Box::new(FedLwf::new(cfg)),
        MethodChoice::FedEwc => Box::new(FedEwc::new(cfg)),
        MethodChoice::FedL2p => Box::new(FedL2p::new(prompt_cfg, false)),
        MethodChoice::FedL2pPool => Box::new(FedL2p::new(prompt_cfg, true)),
        MethodChoice::FedDualPrompt => Box::new(FedDualPrompt::new(prompt_cfg, false)),
        MethodChoice::FedDualPromptPool => Box::new(FedDualPrompt::new(prompt_cfg, true)),
        MethodChoice::RefFiL => Box::new(RefFiL::new(RefFiLConfig::new(prompt_cfg))),
        MethodChoice::RefFiLPromptOnly => Box::new(RefFiL::new(
            RefFiLConfig::new(prompt_cfg).with_prompt_only(true),
        )),
    }
}

/// Builds an ablated RefFiL variant (Table 5 rows).
pub fn build_reffil_variant(cfg: MethodConfig, flags: RefFiLFlags) -> Box<dyn FdilStrategy> {
    let prompt_cfg = MethodConfig {
        stable_after_first_task: true,
        ..cfg
    };
    Box::new(RefFiL::new(RefFiLConfig::new(prompt_cfg).with_flags(flags)))
}

/// The eight paper row labels, in order.
pub fn method_names() -> Vec<&'static str> {
    MethodChoice::all().iter().map(|m| m.paper_name()).collect()
}

/// Looks up a method by (case-insensitive) name; `+pool` or a trailing `!`
/// selects the dagger variants.
pub fn method_by_name(name: &str) -> Option<MethodChoice> {
    match name.to_ascii_lowercase().replace('-', "").as_str() {
        "finetune" => Some(MethodChoice::Finetune),
        "fedlwf" | "lwf" => Some(MethodChoice::FedLwf),
        "fedewc" | "ewc" => Some(MethodChoice::FedEwc),
        "fedl2p" | "l2p" => Some(MethodChoice::FedL2p),
        "fedl2p+pool" | "l2p+pool" | "fedl2p!" => Some(MethodChoice::FedL2pPool),
        "feddualprompt" | "dualprompt" => Some(MethodChoice::FedDualPrompt),
        "feddualprompt+pool" | "dualprompt+pool" | "feddualprompt!" => {
            Some(MethodChoice::FedDualPromptPool)
        }
        "reffil" => Some(MethodChoice::RefFiL),
        "reffil+prompt" | "reffil+promptonly" | "reffilprompt" => {
            Some(MethodChoice::RefFiLPromptOnly)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_methods_with_dagger_rows() {
        let names = method_names();
        assert_eq!(names.len(), 8);
        assert!(names.contains(&"FedL2P\u{2020}"));
        assert!(names.contains(&"RefFiL"));
    }

    #[test]
    fn every_method_constructs() {
        let cfg = method_config(DatasetChoice::Pacs, 4, 1);
        for m in MethodChoice::all() {
            let mut s = build_method(m, cfg);
            assert!(!s.init_global().is_empty(), "{:?} produced empty params", m);
        }
    }

    #[test]
    fn method_lookup_by_name() {
        assert_eq!(method_by_name("RefFiL"), Some(MethodChoice::RefFiL));
        assert_eq!(method_by_name("l2p+pool"), Some(MethodChoice::FedL2pPool));
        assert_eq!(method_by_name("ewc"), Some(MethodChoice::FedEwc));
        assert_eq!(
            method_by_name("reffil+prompt"),
            Some(MethodChoice::RefFiLPromptOnly)
        );
        assert_eq!(
            method_by_name(MethodChoice::RefFiLPromptOnly.cli_name()),
            Some(MethodChoice::RefFiLPromptOnly)
        );
        assert_eq!(method_by_name("unknown"), None);
    }

    #[test]
    fn config_tracks_dataset() {
        let c = method_config(DatasetChoice::FedDomainNet, 6, 0);
        assert_eq!(c.backbone.classes, 48);
        assert_eq!(c.backbone.in_dim, 48);
        assert_eq!(c.lr, 0.04);
        assert_eq!(c.max_tasks, 6);
    }
}
