//! # refil-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper (see the `DESIGN.md` per-experiment index). Each table/figure has a
//! binary (`table1` … `fig6_tsne`) that prints the same rows/series the paper
//! reports, on the synthetic dataset analogues.
//!
//! The harness scales the paper's protocol (R=30 rounds, E=20 local epochs,
//! full-size datasets) down to CPU-tractable settings via [`Scale`];
//! the reproduction target is the *shape* of the results (method ordering,
//! forgetting gaps), not absolute GPU-scale numbers.

#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod gate;
pub mod meta;
pub mod methods;
pub mod netcli;
pub mod report;
pub mod runner;

pub use datasets::{dataset_by_name, DatasetChoice, Scale};
pub use experiments::{full_results, per_step_tables, summary_table, CachedMethod, FullResults};
pub use gate::{check_report, compare, extract_metrics, Comparison, GateError, MetricDelta};
pub use meta::BenchMeta;
pub use methods::{build_method, method_names, MethodChoice};
pub use netcli::{scale_by_name, scale_name_from_env, NetOverrides, NetSpec, ResolvedSpec};
pub use runner::{
    run_all_methods, run_experiment, run_experiment_traced, run_experiment_with_threads,
    run_experiment_with_wire, ExperimentSpec, MethodResult,
};
