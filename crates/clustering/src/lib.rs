//! # refil-clustering
//!
//! Clustering substrate for RefFiL's global prompt clustering: the
//! parameter-free FINCH algorithm the paper adopts (Eq. 4–5), cosine
//! similarity primitives, cluster representatives, and a seeded k-means used
//! as an ablation comparator.
//!
//! # Examples
//!
//! ```
//! use refil_clustering::finch;
//!
//! let prompts = vec![
//!     vec![1.0, 0.0],
//!     vec![0.9, 0.1],
//!     vec![0.0, 1.0],
//!     vec![0.1, 0.9],
//! ];
//! let result = finch(&prompts);
//! assert_eq!(result.finest().num_clusters, 2);
//! ```

#![warn(missing_docs)]

mod finch;
mod kmeans;
mod similarity;

pub use finch::{cluster_means, finch, finch_traced, representatives, FinchResult, Partition};
pub use kmeans::{kmeans, KmeansResult};
pub use similarity::{cosine_similarity, first_neighbor, squared_distance};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_points(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
        prop::collection::vec(prop::collection::vec(-10.0f32..10.0, dim..=dim), 0..max_n)
    }

    proptest! {
        #[test]
        fn finch_partition_is_valid(points in arb_points(24, 4)) {
            let r = finch(&points);
            for p in &r.partitions {
                prop_assert_eq!(p.labels.len(), points.len());
                if points.is_empty() {
                    prop_assert_eq!(p.num_clusters, 0);
                    continue;
                }
                // Every label in range, every cluster non-empty.
                let mut seen = vec![false; p.num_clusters];
                for &l in &p.labels {
                    prop_assert!(l < p.num_clusters);
                    seen[l] = true;
                }
                prop_assert!(seen.iter().all(|&s| s));
            }
        }

        #[test]
        fn finch_hierarchy_is_monotone(points in arb_points(24, 3)) {
            let r = finch(&points);
            let counts: Vec<usize> = r.partitions.iter().map(|p| p.num_clusters).collect();
            for w in counts.windows(2) {
                prop_assert!(w[1] <= w[0], "counts {:?}", counts);
            }
        }

        #[test]
        fn finch_refinement_nests(points in arb_points(20, 3)) {
            // Finer partitions must refine coarser ones: two points together
            // at level L stay together at level L+1.
            let r = finch(&points);
            for w in r.partitions.windows(2) {
                let (fine, coarse) = (&w[0], &w[1]);
                for i in 0..points.len() {
                    for j in (i + 1)..points.len() {
                        if fine.labels[i] == fine.labels[j] {
                            prop_assert_eq!(coarse.labels[i], coarse.labels[j]);
                        }
                    }
                }
            }
        }

        #[test]
        fn kmeans_labels_in_range(points in arb_points(24, 3), k in 1usize..6) {
            let r = kmeans(&points, k, 7, 50);
            for &l in &r.labels {
                prop_assert!(l < r.centroids.len().max(1));
            }
        }

        #[test]
        fn cosine_symmetric_and_bounded(a in prop::collection::vec(-5.0f32..5.0, 4),
                                        b in prop::collection::vec(-5.0f32..5.0, 4)) {
            let s1 = cosine_similarity(&a, &b);
            let s2 = cosine_similarity(&b, &a);
            prop_assert!((s1 - s2).abs() < 1e-5);
            prop_assert!((-1.0001..=1.0001).contains(&s1));
        }
    }
}
