//! Seeded k-means (Lloyd's algorithm) — the comparison clusterer for the
//! "FINCH vs. k-means vs. plain averaging" ablation bench.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::similarity::squared_distance;

/// k-means clustering result.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Cluster label per point.
    pub labels: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f32>>,
    /// Iterations run until convergence or the cap.
    pub iterations: usize,
}

/// Runs k-means with `k` clusters, deterministic given `seed`.
///
/// Empty clusters are reseeded from the farthest point. Returns all points in
/// one cluster when `k == 1`, and a trivial result for empty input.
///
/// # Panics
///
/// Panics if `k == 0` while points are non-empty.
pub fn kmeans(points: &[Vec<f32>], k: usize, seed: u64, max_iters: usize) -> KmeansResult {
    if points.is_empty() {
        return KmeansResult {
            labels: vec![],
            centroids: vec![],
            iterations: 0,
        };
    }
    assert!(k > 0, "k must be positive");
    let k = k.min(points.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = points[0].len();

    // k-means++-style seeding (greedy on squared distance).
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let (mut best_i, mut best_d) = (0usize, -1.0f32);
        for (i, p) in points.iter().enumerate() {
            let d = centroids
                .iter()
                .map(|c| squared_distance(p, c))
                .fold(f32::INFINITY, f32::min);
            if d > best_d {
                best_d = d;
                best_i = i;
            }
        }
        centroids.push(points[best_i].clone());
    }

    let mut labels = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let (mut best_l, mut best_d) = (0usize, f32::INFINITY);
            for (l, c) in centroids.iter().enumerate() {
                let d = squared_distance(p, c);
                if d < best_d {
                    best_d = d;
                    best_l = l;
                }
            }
            if labels[i] != best_l {
                labels[i] = best_l;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &l) in points.iter().zip(&labels) {
            counts[l] += 1;
            for (s, &x) in sums[l].iter_mut().zip(p) {
                *s += x;
            }
        }
        for l in 0..k {
            if counts[l] == 0 {
                // Reseed an empty cluster from the point farthest from its centroid.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        squared_distance(a, &centroids[labels[0]])
                            .total_cmp(&squared_distance(b, &centroids[labels[0]]))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[l] = points[far].clone();
            } else {
                for (c, s) in centroids[l].iter_mut().zip(&sums[l]) {
                    *c = s / counts[l] as f32;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }
    KmeansResult {
        labels,
        centroids,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_obvious_clusters() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 9.9],
        ];
        let r = kmeans(&pts, 2, 1, 50);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[2], r.labels[3]);
        assert_ne!(r.labels[0], r.labels[2]);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![1.0], vec![2.0]];
        let r = kmeans(&pts, 10, 0, 10);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts: Vec<Vec<f32>> = (0..20)
            .map(|i| vec![(i % 5) as f32, (i / 5) as f32])
            .collect();
        let a = kmeans(&pts, 3, 42, 100);
        let b = kmeans(&pts, 3, 42, 100);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn empty_input_is_trivial() {
        let r = kmeans(&[], 3, 0, 10);
        assert!(r.labels.is_empty());
        assert!(r.centroids.is_empty());
    }
}
