//! FINCH: parameter-free clustering by first-neighbour relations
//! (Sarfraz, Sharma & Stiefelhagen, CVPR 2019).
//!
//! RefFiL's server clusters uploaded prompt groups with FINCH (paper Eq. 4):
//! two prompts `m`, `j` are linked when `j = c_m` (j is m's first neighbour),
//! `m = c_j`, or `c_m = c_j` (they share a first neighbour). Connected
//! components of that adjacency form the first partition; the procedure then
//! recurses on cluster means to build a hierarchy, needing no cluster-count
//! parameter — which is what makes it suitable for the dynamic federated
//! setting.

use crate::similarity::{cosine_similarity, first_neighbor};

/// One level of the FINCH hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Cluster label per input point.
    pub labels: Vec<usize>,
    /// Number of clusters at this level.
    pub num_clusters: usize,
}

/// Full FINCH output: successively coarser partitions (level 0 = finest).
#[derive(Debug, Clone)]
pub struct FinchResult {
    /// Partition hierarchy; `partitions[0]` is the first-neighbour partition.
    pub partitions: Vec<Partition>,
}

impl FinchResult {
    /// The finest partition (the one RefFiL's server uses, Eq. 5).
    pub fn finest(&self) -> &Partition {
        &self.partitions[0]
    }

    /// The coarsest computed partition.
    pub fn coarsest(&self) -> &Partition {
        self.partitions
            .last()
            .expect("FINCH always yields at least one partition")
    }

    /// The partition whose cluster count is closest to `k` (FINCH's standard
    /// "required number of clusters" mode without any refinement step).
    pub fn closest_to(&self, k: usize) -> &Partition {
        self.partitions
            .iter()
            .min_by_key(|p| p.num_clusters.abs_diff(k))
            .expect("non-empty hierarchy")
    }
}

/// Runs FINCH on `points` (each a feature vector) under cosine similarity.
///
/// Returns a one-level trivial partition for fewer than two points.
///
/// # Panics
///
/// Panics if point dimensionalities differ.
pub fn finch(points: &[Vec<f32>]) -> FinchResult {
    finch_traced(points, &refil_telemetry::Telemetry::disabled())
}

/// [`finch`] wrapped in a `finch_cluster` telemetry span, recording the
/// input size and resulting hierarchy depth as histogram observations.
pub fn finch_traced(points: &[Vec<f32>], telemetry: &refil_telemetry::Telemetry) -> FinchResult {
    let _span = telemetry.span("finch_cluster");
    let result = finch_inner(points);
    telemetry.observe("finch.points", points.len() as f64);
    telemetry.observe("finch.levels", result.partitions.len() as f64);
    telemetry.observe("finch.finest_clusters", result.finest().num_clusters as f64);
    result
}

fn finch_inner(points: &[Vec<f32>]) -> FinchResult {
    let n = points.len();
    if n == 0 {
        return FinchResult {
            partitions: vec![Partition {
                labels: vec![],
                num_clusters: 0,
            }],
        };
    }
    if n == 1 {
        return FinchResult {
            partitions: vec![Partition {
                labels: vec![0],
                num_clusters: 1,
            }],
        };
    }
    let dim = points[0].len();
    for p in points {
        assert_eq!(p.len(), dim, "inconsistent point dimensionality");
    }

    let mut partitions = Vec::new();
    // `current` holds the representative vectors at this level; `mapping[i]`
    // maps original point i to its index among `current`.
    let mut current: Vec<Vec<f32>> = points.to_vec();
    let mut mapping: Vec<usize> = (0..n).collect();

    loop {
        let level = cluster_once(&current);
        let labels: Vec<usize> = mapping.iter().map(|&m| level.labels[m]).collect();
        let num_clusters = level.num_clusters;
        partitions.push(Partition {
            labels: labels.clone(),
            num_clusters,
        });
        if num_clusters <= 1 || num_clusters == current.len() {
            break;
        }
        current = cluster_means(&current, &level.labels, num_clusters);
        mapping = labels;
        if current.len() < 2 {
            break;
        }
    }
    FinchResult { partitions }
}

/// One round of first-neighbour clustering: adjacency per Eq. 4, then
/// connected components.
fn cluster_once(points: &[Vec<f32>]) -> Partition {
    let n = points.len();
    if n == 1 {
        return Partition {
            labels: vec![0],
            num_clusters: 1,
        };
    }
    let neighbors: Vec<usize> = (0..n).map(|i| first_neighbor(points, i)).collect();

    // Union-find over the Eq. 4 links.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    };
    for (i, &nb) in neighbors.iter().enumerate() {
        // j = c_i and i = c_j are both covered by linking i with c_i.
        union(&mut parent, i, nb);
        // c_i = c_j: linking every i to c_i already places all points sharing
        // a first neighbour in the same component (transitively via c_i).
    }

    // Compact component ids into 0..k in order of first appearance.
    let mut labels = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut remap: Vec<Option<usize>> = vec![None; n];
    for (i, label) in labels.iter_mut().enumerate() {
        let root = find(&mut parent, i);
        *label = *remap[root].get_or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
    }
    Partition {
        labels,
        num_clusters: next,
    }
}

/// Mean vector of each cluster.
///
/// # Panics
///
/// Panics if a label `>= num_clusters` appears.
pub fn cluster_means(points: &[Vec<f32>], labels: &[usize], num_clusters: usize) -> Vec<Vec<f32>> {
    assert_eq!(points.len(), labels.len(), "labels length mismatch");
    let dim = points.first().map_or(0, Vec::len);
    let mut sums = vec![vec![0.0f32; dim]; num_clusters];
    let mut counts = vec![0usize; num_clusters];
    for (p, &l) in points.iter().zip(labels) {
        assert!(l < num_clusters, "label {l} out of range");
        counts[l] += 1;
        for (s, &x) in sums[l].iter_mut().zip(p) {
            *s += x;
        }
    }
    for (s, &c) in sums.iter_mut().zip(&counts) {
        if c > 0 {
            for x in s.iter_mut() {
                *x /= c as f32;
            }
        }
    }
    sums
}

/// For each cluster, the index of the member closest (by cosine) to the
/// cluster mean — the cluster's representative ("medoid-to-mean").
pub fn representatives(points: &[Vec<f32>], labels: &[usize], num_clusters: usize) -> Vec<usize> {
    let means = cluster_means(points, labels, num_clusters);
    let mut best = vec![usize::MAX; num_clusters];
    let mut best_sim = vec![f32::NEG_INFINITY; num_clusters];
    for (i, (p, &l)) in points.iter().zip(labels).enumerate() {
        let s = cosine_similarity(p, &means[l]);
        if s > best_sim[l] {
            best_sim[l] = s;
            best[l] = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.05],
            vec![0.95, 0.0],
            vec![1.05, -0.02],
            vec![-0.02, 1.0],
            vec![0.0, 0.97],
            vec![0.03, 1.04],
        ]
    }

    #[test]
    fn separates_two_blobs() {
        let r = finch(&two_blobs());
        let p = r.finest();
        assert_eq!(p.num_clusters, 2, "labels {:?}", p.labels);
        assert_eq!(p.labels[0], p.labels[1]);
        assert_eq!(p.labels[1], p.labels[2]);
        assert_eq!(p.labels[3], p.labels[4]);
        assert_eq!(p.labels[4], p.labels[5]);
        assert_ne!(p.labels[0], p.labels[3]);
    }

    #[test]
    fn hierarchy_coarsens() {
        let r = finch(&two_blobs());
        let counts: Vec<usize> = r.partitions.iter().map(|p| p.num_clusters).collect();
        for w in counts.windows(2) {
            assert!(w[1] <= w[0], "hierarchy not monotone: {counts:?}");
        }
        assert_eq!(r.coarsest().num_clusters, 1);
    }

    #[test]
    fn single_point_single_cluster() {
        let r = finch(&[vec![1.0, 2.0]]);
        assert_eq!(r.finest().num_clusters, 1);
        assert_eq!(r.finest().labels, vec![0]);
    }

    #[test]
    fn empty_input() {
        let r = finch(&[]);
        assert_eq!(r.finest().num_clusters, 0);
        assert!(r.finest().labels.is_empty());
    }

    #[test]
    fn identical_points_collapse() {
        let pts = vec![vec![0.5, 0.5]; 5];
        let r = finch(&pts);
        assert_eq!(r.finest().num_clusters, 1);
    }

    #[test]
    fn closest_to_picks_right_level() {
        let r = finch(&two_blobs());
        assert_eq!(r.closest_to(2).num_clusters, 2);
        assert_eq!(r.closest_to(1).num_clusters, 1);
    }

    #[test]
    fn representatives_belong_to_their_cluster() {
        let pts = two_blobs();
        let r = finch(&pts);
        let p = r.finest();
        let reps = representatives(&pts, &p.labels, p.num_clusters);
        for (cluster, &rep) in reps.iter().enumerate() {
            assert_eq!(p.labels[rep], cluster);
        }
    }

    #[test]
    fn cluster_means_average() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 2.0], vec![10.0, 10.0]];
        let means = cluster_means(&pts, &[0, 0, 1], 2);
        assert_eq!(means[0], vec![1.0, 1.0]);
        assert_eq!(means[1], vec![10.0, 10.0]);
    }
}
