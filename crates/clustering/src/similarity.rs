//! Vector similarity primitives.

/// Cosine similarity between two equal-length vectors.
///
/// Returns `0.0` when either vector has (near-)zero norm, so degenerate
/// prompts never dominate a nearest-neighbour search.
///
/// # Panics
///
/// Panics if lengths differ.
///
/// # Examples
///
/// ```
/// let s = refil_clustering::cosine_similarity(&[1.0, 0.0], &[0.5, 0.0]);
/// assert!((s - 1.0).abs() < 1e-6);
/// ```
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "cosine length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    let denom = na.sqrt() * nb.sqrt();
    if denom <= f32::EPSILON {
        0.0
    } else {
        dot / denom
    }
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Index of the nearest neighbour of `points[i]` under cosine similarity,
/// excluding `i` itself. Ties break toward the smaller index.
///
/// # Panics
///
/// Panics if `points.len() < 2`.
pub fn first_neighbor(points: &[Vec<f32>], i: usize) -> usize {
    assert!(
        points.len() >= 2,
        "first neighbour needs at least two points"
    );
    let mut best = usize::MAX;
    let mut best_sim = f32::NEG_INFINITY;
    for (j, p) in points.iter().enumerate() {
        if j == i {
            continue;
        }
        let s = cosine_similarity(&points[i], p);
        if s > best_sim {
            best_sim = s;
            best = j;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn first_neighbor_excludes_self() {
        let pts = vec![vec![1.0, 0.0], vec![0.9, 0.1], vec![0.0, 1.0]];
        assert_eq!(first_neighbor(&pts, 0), 1);
        assert_eq!(first_neighbor(&pts, 1), 0);
        assert_eq!(first_neighbor(&pts, 2), 1);
    }

    #[test]
    fn squared_distance_matches_manual() {
        assert_eq!(squared_distance(&[0.0, 3.0], &[4.0, 0.0]), 25.0);
    }
}
