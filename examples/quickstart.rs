//! Quickstart: run RefFiL on a small synthetic Digits-Five and print the
//! paper's metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use refil::continual::MethodConfig;
use refil::core::{RefFiL, RefFiLConfig};
use refil::data::{digits_five, PresetConfig};
use refil::eval::scores;
use refil::fed::{FdilRunner, IncrementConfig, RunConfig};
use refil::nn::models::BackboneConfig;

fn main() {
    // 1. A small synthetic Digits-Five: 10 classes observed under 5 domains
    //    (MNIST -> MNIST-M -> USPS -> SVHN -> SYN) with growing domain shift.
    let dataset = digits_five(PresetConfig::small()).generate(42);
    println!(
        "dataset: {} — {} classes, {} domains, {} samples",
        dataset.name,
        dataset.classes,
        dataset.num_domains(),
        dataset.total_samples()
    );

    // 2. RefFiL with a compact backbone. `stable_after_first_task` is the
    //    prompt-method training regime (adaptation flows through prompts over
    //    a stable representation).
    let method = MethodConfig {
        backbone: BackboneConfig {
            classes: dataset.classes,
            ..BackboneConfig::default()
        },
        max_tasks: dataset.num_domains(),
        stable_after_first_task: true,
        ..MethodConfig::default()
    };
    let mut strategy = RefFiL::new(RefFiLConfig::new(method));

    // 3. The federated domain-incremental protocol: clients join over time,
    //    80 % of existing clients gradually transition to each new domain.
    let run_cfg = RunConfig {
        increment: IncrementConfig {
            initial_clients: 8,
            select_per_round: 4,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 4,
        },
        local_epochs: 2,
        batch_size: 32,
        ..RunConfig::default()
    };
    println!(
        "training RefFiL over {} incremental tasks ...",
        dataset.num_domains()
    );
    let result = FdilRunner::new(run_cfg).run(&dataset, &mut strategy);

    // 4. Report the paper's metrics.
    let s = scores(&result.domain_acc);
    println!("\nstep accuracies (A_t): {:?}", result.step_accuracies());
    println!("Avg  (mean over steps): {:.2}%", s.avg);
    println!("Last (after final task): {:.2}%", s.last);
    println!("forgetting: {:.2}%", s.forgetting);
    println!(
        "prompt store: {} clustered representatives across {} classes",
        strategy.prompt_store().total_reps(),
        dataset.classes
    );
    println!(
        "traffic: {:.1} MiB down / {:.1} MiB up over {} rounds",
        result.traffic.down_bytes as f64 / (1024.0 * 1024.0),
        result.traffic.up_bytes as f64 / (1024.0 * 1024.0),
        result.traffic.rounds
    );
}
