//! Removing RefFiL's task-ID dependence (the paper's stated limitation).
//!
//! The CDAP generator conditions prompts on a task-key embedding, so
//! standard evaluation needs to know which domain a test batch comes from.
//! This example trains RefFiL, then compares three inference policies on the
//! final global model:
//!
//! 1. oracle task ID (the paper's evaluation setting);
//! 2. confidence-based task inference (this reproduction's extension:
//!    generate prompts under every task key, keep the most confident
//!    prediction);
//! 3. naively conditioning on the latest task key.
//!
//! ```text
//! cargo run --release --example task_free_inference
//! ```

use refil::continual::MethodConfig;
use refil::core::{RefFiL, RefFiLConfig};
use refil::data::{digits_five, PresetConfig};
use refil::fed::{FdilRunner, FdilStrategy, IncrementConfig, RunConfig};
use refil::nn::models::BackboneConfig;
use refil::nn::Tensor;

fn domain_accuracy(
    strat: &mut RefFiL,
    global: &[f32],
    dataset: &refil::data::FdilDataset,
    domain: usize,
    policy: &str,
) -> f32 {
    let test = &dataset.domains[domain].test;
    let mut correct = 0usize;
    for chunk in test.chunks(256) {
        let dim = chunk[0].features.len();
        let mut data = Vec::with_capacity(chunk.len() * dim);
        for s in chunk {
            data.extend_from_slice(&s.features);
        }
        let x = Tensor::from_vec(data, &[chunk.len(), dim]);
        let preds = match policy {
            "oracle" => strat.predict_domain(global, &x, domain),
            "task-free" => strat.predict_task_free(global, &x),
            _ => strat.predict_domain(global, &x, dataset.num_domains() - 1),
        };
        correct += preds
            .iter()
            .zip(chunk)
            .filter(|(p, s)| **p == s.label)
            .count();
    }
    100.0 * correct as f32 / test.len() as f32
}

fn main() {
    let dataset = digits_five(PresetConfig::small()).generate(42);
    let method = MethodConfig {
        backbone: BackboneConfig {
            classes: dataset.classes,
            ..BackboneConfig::default()
        },
        max_tasks: dataset.num_domains(),
        stable_after_first_task: true,
        ..MethodConfig::default()
    };
    let run_cfg = RunConfig {
        increment: IncrementConfig {
            initial_clients: 8,
            select_per_round: 4,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 4,
        },
        local_epochs: 2,
        ..RunConfig::default()
    };
    println!("training RefFiL on {} ...", dataset.name);
    let mut strat = RefFiL::new(RefFiLConfig::new(method));
    let res = FdilRunner::new(run_cfg).run(&dataset, &mut strat);

    println!("\nfinal-model accuracy per domain under each inference policy:\n");
    println!(
        "{:<10} {:>8} {:>10} {:>8}",
        "domain", "oracle", "task-free", "latest"
    );
    for d in 0..dataset.num_domains() {
        let oracle = domain_accuracy(&mut strat, &res.final_global, &dataset, d, "oracle");
        let free = domain_accuracy(&mut strat, &res.final_global, &dataset, d, "task-free");
        let latest = domain_accuracy(&mut strat, &res.final_global, &dataset, d, "latest");
        println!(
            "{:<10} {:>7.1}% {:>9.1}% {:>7.1}%",
            dataset.domains[d].name, oracle, free, latest
        );
    }
    println!(
        "\ntask-free inference needs no domain label at test time, at {}x forward cost",
        dataset.num_domains()
    );
}
