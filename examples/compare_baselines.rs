//! Compare RefFiL against the rehearsal-free baselines on a small
//! OfficeCaltech10 — a miniature of the paper's Table 1.
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use refil::continual::{FedDualPrompt, FedEwc, FedLwf, Finetune, MethodConfig};
use refil::core::{RefFiL, RefFiLConfig};
use refil::data::{office_caltech10, PresetConfig};
use refil::eval::{pct, scores, Table};
use refil::fed::{FdilRunner, FdilStrategy, IncrementConfig, RunConfig};
use refil::nn::models::BackboneConfig;

fn main() {
    let dataset = office_caltech10(PresetConfig {
        scale: 0.25,
        feature_dim: 32,
    })
    .generate(7);
    let method = MethodConfig {
        backbone: BackboneConfig {
            classes: dataset.classes,
            ..BackboneConfig::default()
        },
        lr: 0.06, // the paper's OfficeCaltech10 learning rate
        max_tasks: dataset.num_domains(),
        ..MethodConfig::default()
    };
    let prompt_method = MethodConfig {
        stable_after_first_task: true,
        ..method
    };
    let run_cfg = RunConfig {
        increment: IncrementConfig {
            initial_clients: 6,
            select_per_round: 3,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 4,
        },
        local_epochs: 2,
        batch_size: 32,
        ..RunConfig::default()
    };

    let mut strategies: Vec<Box<dyn FdilStrategy>> = vec![
        Box::new(Finetune::new(method)),
        Box::new(FedLwf::new(method)),
        Box::new(FedEwc::new(method)),
        Box::new(FedDualPrompt::new(prompt_method, true)),
        Box::new(RefFiL::new(RefFiLConfig::new(prompt_method))),
    ];

    let mut table = Table::new(
        ["Method", "Avg", "Last", "Forgetting"]
            .map(String::from)
            .to_vec(),
    );
    for strategy in &mut strategies {
        eprintln!("running {} ...", strategy.name());
        let result = FdilRunner::new(run_cfg).run(&dataset, strategy.as_mut());
        let s = scores(&result.domain_acc);
        table.row(vec![
            strategy.name(),
            pct(s.avg),
            pct(s.last),
            pct(s.forgetting),
        ]);
    }
    println!("\n{}", table.to_markdown());
}
