//! Standalone walkthrough of RefFiL's server-side prompt machinery: clients
//! from different domains upload Local Prompt Groups, the server clusters
//! them domain-wise with FINCH and derives the generalized global prompt.
//!
//! ```text
//! cargo run --release --example prompt_clustering
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use refil::clustering::{cosine_similarity, finch};
use refil::core::{GlobalPromptStore, LocalPromptGroup};
use refil::nn::gaussian;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let dim = 8; // flattened p*d prompt dimension (small for readability)
    let classes = 3;

    // Three "domains", each with its own prompt direction per class.
    let mut domain_dirs = Vec::new();
    for _ in 0..3 {
        let dir: Vec<f32> = (0..dim).map(|_| gaussian(&mut rng)).collect();
        domain_dirs.push(dir);
    }

    // Twelve clients upload LPGs: client c lives in domain c % 3.
    let mut uploads = Vec::new();
    for client in 0..12 {
        let dir = &domain_dirs[client % 3];
        let prompts = (0..classes)
            .map(|k| {
                let v: Vec<f32> = dir
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| {
                        d + 0.3 * k as f32 * ((i % 3) as f32) + gaussian(&mut rng) * 0.05
                    })
                    .collect();
                (k, v)
            })
            .collect();
        uploads.push(LocalPromptGroup {
            client_id: client,
            prompts,
        });
    }

    // Raw FINCH view: cluster class 0's prompts directly.
    let class0: Vec<Vec<f32>> = uploads.iter().map(|u| u.prompts[0].1.clone()).collect();
    let partition = finch(&class0);
    println!(
        "FINCH on class 0 prompts: {} clusters from {} uploads",
        partition.finest().num_clusters,
        class0.len()
    );
    println!(
        "labels: {:?} (clients 0..12, domains repeat 0,1,2)",
        partition.finest().labels
    );

    // The full server store.
    let mut store = GlobalPromptStore::new(classes, dim);
    store.ingest(&uploads);
    for k in 0..classes {
        println!(
            "class {k}: {} representatives after clustering",
            store.class_representatives(k).len()
        );
    }

    // The generalized prompt P̄^g (Eq. 8) summarizes all domains at once.
    let general = store.generalized_prompt().expect("store populated");
    for (d, dir) in domain_dirs.iter().enumerate() {
        println!(
            "cos(P̄^g, domain {d} direction) = {:+.3}",
            cosine_similarity(&general, dir)
        );
    }
    println!(
        "\nbroadcast cost: {} bytes of prompts — the framework's entire cross-task memory",
        store.byte_len()
    );
}
