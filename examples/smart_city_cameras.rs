//! A domain-specific scenario: a city's federated traffic-camera network.
//!
//! Cameras collaboratively classify 6 vehicle types. The deployment rolls
//! through environmental domains over time — clear daylight, night,
//! heavy rain — and new cameras join each phase. No camera may store old
//! footage (privacy!), so the model must stay accurate on daylight scenes
//! while learning night and rain, rehearsal-free. This is exactly the FDIL
//! setting the paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example smart_city_cameras
//! ```

use refil::continual::MethodConfig;
use refil::core::{RefFiL, RefFiLConfig};
use refil::data::{DatasetSpec, DomainSpec};
use refil::eval::scores;
use refil::fed::{FdilRunner, IncrementConfig, RunConfig};
use refil::nn::models::BackboneConfig;

fn main() {
    // Custom dataset: 6 vehicle classes under 3 environmental domains.
    // `shift` models how far the sensor distribution drifts; `collision`
    // models how much a rainy-night bus resembles a daylight truck.
    let dataset = DatasetSpec {
        name: "SmartCityCameras".into(),
        classes: 6,
        feature_dim: 32,
        proto_scale: 2.0,
        within_std: 0.5,
        test_fraction: 0.25,
        signature_dim: 4,
        signature_scale: 0.3,
        domains: vec![
            DomainSpec::new("daylight", 900, 0.3, 0.1),
            DomainSpec::new("night", 700, 0.8, 0.6).with_collision(0.8),
            DomainSpec::new("heavy-rain", 500, 1.1, 1.1)
                .with_collision(1.6)
                .with_label_noise(0.05),
        ],
    }
    .generate(2024);

    let method = MethodConfig {
        backbone: BackboneConfig {
            classes: 6,
            ..BackboneConfig::default()
        },
        max_tasks: 3,
        stable_after_first_task: true,
        ..MethodConfig::default()
    };
    let mut strategy = RefFiL::new(RefFiLConfig::new(method));

    let run_cfg = RunConfig {
        increment: IncrementConfig {
            initial_clients: 10, // ten cameras at launch
            select_per_round: 5,
            increment_per_task: 3, // three new cameras per rollout phase
            transition_fraction: 0.8,
            rounds_per_task: 5,
        },
        local_epochs: 2,
        batch_size: 32,
        ..RunConfig::default()
    };

    println!("rolling out the camera network through 3 environmental phases ...");
    let result = FdilRunner::new(run_cfg).run(&dataset, &mut strategy);
    let s = scores(&result.domain_acc);

    println!("\nper-phase evaluation (rows = after phase, cols = environment):");
    for (t, row) in result.domain_acc.iter().enumerate() {
        let cells: Vec<String> = row
            .iter()
            .zip(&result.domain_names)
            .map(|(a, n)| format!("{n} {a:5.1}%"))
            .collect();
        println!("  after phase {}: {}", t + 1, cells.join("  "));
    }
    println!(
        "\nAvg {:.2}%  Last {:.2}%  forgetting {:.2}%",
        s.avg, s.last, s.forgetting
    );

    // Inspect what the server learned about the environments: the clustered
    // prompt store should hold multiple representatives per class once
    // several environments have been seen.
    let store = strategy.prompt_store();
    println!(
        "server prompt memory: {} representatives ({} bytes broadcast per round) — no raw footage stored",
        store.total_reps(),
        store.byte_len()
    );
}
