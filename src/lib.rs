//! RefFiL facade crate: re-exports every workspace subcrate under one root,
//! so downstream code and the examples can write `refil::fed::FdilRunner`
//! instead of depending on each `refil-*` crate individually.

/// Neural-network primitives: tensors, layers, backbone models.
pub mod nn {
    pub use refil_nn::*;
}

/// Synthetic domain-incremental datasets and partitioning presets.
pub mod data {
    pub use refil_data::*;
}

/// Typed wire layer: versioned binary codec and transport abstraction for
/// every client↔server exchange.
pub mod wire {
    pub use refil_wire::*;
}

/// Federated runner: FDIL protocol loop, traffic accounting, aggregation.
pub mod fed {
    pub use refil_fed::*;
}

/// FINCH first-neighbor clustering and similarity utilities.
pub mod clustering {
    pub use refil_clustering::*;
}

/// Continual-learning baselines (finetune, EWC, LwF, DualPrompt).
pub mod continual {
    pub use refil_continual::*;
}

/// The RefFiL method: prompt pools, CDAP generator, DPCL loss.
pub mod core {
    pub use refil_core::*;
}

/// Evaluation metrics and report tables.
pub mod eval {
    pub use refil_eval::*;
}

/// Telemetry: spans, counters, and trace sinks for the training loop.
pub mod telemetry {
    pub use refil_telemetry::*;
}
